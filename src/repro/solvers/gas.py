"""Perfect-gas relations and state conversions shared by both solvers.

States are stored conservatively.  Cart3D's Euler solver carries five
unknowns per cell, ``[rho, rho u, rho v, rho w, rho E]``; NSU3D carries
six per point — the same five plus the turbulence working variable
``rho nu_t`` (paper section III: "The six degrees of freedom at each grid
point consist of the density, three-dimensional momentum vector, energy,
and turbulence variable").  All routines are vectorized over ``(N, nvar)``
arrays and accept either width; the turbulence variable passes through
conversions untouched (it is advected like a passive scalar).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

GAMMA = 1.4
GM1 = GAMMA - 1.0

#: Variable counts: Euler (Cart3D) and RANS+SA (NSU3D)
NVAR_EULER = 5
NVAR_RANS = 6


@dataclass(frozen=True)
class VariableLayout:
    """Column roles in an ``(N, nvar)`` conservative state array.

    Both solvers store ``[rho, rho u, rho v, rho w, rho E]`` in the
    first five columns; anything beyond is a turbulence working
    variable.  Code that treats specific columns specially (correction
    limiting, positivity handling) should read the slots from here
    rather than hard-coding indices, so wider state vectors keep
    working.
    """

    nvar: int
    density: int = 0
    momentum: tuple[int, int, int] = (1, 2, 3)
    energy: int = 4
    #: turbulence working-variable columns (empty for pure Euler states)
    turbulence: tuple[int, ...] = field(init=False)
    #: columns guarded by relative-change limiting (thermodynamic state)
    limited: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.nvar < NVAR_EULER:
            raise ValueError(
                f"state needs at least {NVAR_EULER} variables, got {self.nvar}"
            )
        object.__setattr__(
            self, "turbulence", tuple(range(NVAR_EULER, self.nvar))
        )
        object.__setattr__(self, "limited", (self.density, self.energy))


def variable_layout(nvar: int) -> VariableLayout:
    """The :class:`VariableLayout` for an ``nvar``-wide state."""
    return VariableLayout(nvar=int(nvar))


def primitive_to_conservative(prim: np.ndarray) -> np.ndarray:
    """[rho, u, v, w, p, (nu_t)] -> [rho, rho u, ..., rho E, (rho nu_t)]."""
    prim = np.asarray(prim, dtype=np.float64)
    rho = prim[..., 0]
    vel = prim[..., 1:4]
    p = prim[..., 4]
    cons = np.empty_like(prim)
    cons[..., 0] = rho
    cons[..., 1:4] = rho[..., None] * vel
    cons[..., 4] = p / GM1 + 0.5 * rho * np.sum(vel**2, axis=-1)
    if prim.shape[-1] == NVAR_RANS:
        cons[..., 5] = rho * prim[..., 5]
    return cons


def conservative_to_primitive(cons: np.ndarray) -> np.ndarray:
    """Inverse of :func:`primitive_to_conservative`."""
    cons = np.asarray(cons, dtype=np.float64)
    rho = cons[..., 0]
    inv_rho = 1.0 / rho
    vel = cons[..., 1:4] * inv_rho[..., None]
    prim = np.empty_like(cons)
    prim[..., 0] = rho
    prim[..., 1:4] = vel
    prim[..., 4] = GM1 * (cons[..., 4] - 0.5 * rho * np.sum(vel**2, axis=-1))
    if cons.shape[-1] == NVAR_RANS:
        prim[..., 5] = cons[..., 5] * inv_rho
    return prim


def pressure(cons: np.ndarray) -> np.ndarray:
    cons = np.asarray(cons)
    rho = cons[..., 0]
    ke = 0.5 * np.sum(cons[..., 1:4] ** 2, axis=-1) / rho
    return GM1 * (cons[..., 4] - ke)


def sound_speed(cons: np.ndarray) -> np.ndarray:
    return np.sqrt(GAMMA * pressure(cons) / np.asarray(cons)[..., 0])


def mach_number(cons: np.ndarray) -> np.ndarray:
    cons = np.asarray(cons)
    speed = np.linalg.norm(cons[..., 1:4] / cons[..., 0:1], axis=-1)
    return speed / sound_speed(cons)


def freestream(
    mach: float,
    alpha_deg: float = 0.0,
    beta_deg: float = 0.0,
    nvar: int = NVAR_EULER,
    nu_t_ratio: float = 3.0,
    nu_lam: float = 1.0,
) -> np.ndarray:
    """Non-dimensional freestream conservative state.

    rho = 1, p = 1/gamma (so a = 1 and |u| = Mach); flow direction from
    angle-of-attack ``alpha`` (x-z plane) and sideslip ``beta`` (x-y).
    For 6-variable states the SA working variable is seeded at
    ``nu_t_ratio * nu_lam`` — the standard SA farfield value is ~3 times
    the laminar kinematic viscosity, so pass the flow's actual ``nu_lam``
    (= mu / rho_inf).
    """
    if mach <= 0:
        raise ValueError("mach must be positive")
    if nvar not in (NVAR_EULER, NVAR_RANS):
        raise ValueError("nvar must be 5 or 6")
    a = np.radians(alpha_deg)
    b = np.radians(beta_deg)
    direction = np.array(
        [np.cos(a) * np.cos(b), np.sin(b), np.sin(a) * np.cos(b)]
    )
    prim = np.zeros(nvar, dtype=np.float64)
    prim[0] = 1.0
    prim[1:4] = mach * direction
    prim[4] = 1.0 / GAMMA
    if nvar == NVAR_RANS:
        prim[5] = nu_t_ratio * nu_lam
    return primitive_to_conservative(prim)


def apply_positivity_floors(
    cons: np.ndarray,
    rho_floor: float = 1e-3,
    p_floor: float = 1e-4,
) -> np.ndarray:
    """Clip density and pressure from below (energy adjusted to match).

    The startup guard both solvers use: impulsive-start transients can
    drive isolated cells unphysical; flooring them keeps the implicit
    iteration alive, and the floors go inactive as the flow establishes.
    Returns a corrected copy only if anything was clipped.
    """
    cons = np.asarray(cons)
    rho_bad = cons[..., 0] < rho_floor
    p = pressure(cons)
    p_bad = p < p_floor
    if not (rho_bad.any() or p_bad.any()):
        return cons
    out = cons.copy()
    out[rho_bad, 0] = rho_floor
    ke = 0.5 * np.sum(out[..., 1:4] ** 2, axis=-1) / out[..., 0]
    p = pressure(out)
    p_bad = p < p_floor
    out[p_bad, 4] = ke[p_bad] + p_floor / GM1
    return out


def check_physical(cons: np.ndarray) -> bool:
    """True when density and pressure are everywhere positive."""
    cons = np.asarray(cons)
    return bool((cons[..., 0] > 0).all() and (pressure(cons) > 0).all())


def total_energy_flux_consistent(cons: np.ndarray) -> np.ndarray:
    """rho H = rho E + p, the enthalpy transported by the flux."""
    return np.asarray(cons)[..., 4] + pressure(cons)
