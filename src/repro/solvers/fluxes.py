"""Upwind numerical fluxes for the compressible equations.

Both papers' solvers are second-order upwind finite-volume schemes;
Cart3D is "cell-centered, finite-volume upwind", NSU3D an edge-based
control-volume scheme.  Three interface fluxes are provided, each
vectorized over faces with arbitrary (non-unit) area normals:

* :func:`rusanov_flux` — local Lax-Friedrichs; maximal robustness, used
  for farfield ghosts and as the implicit smoother's dissipation model;
* :func:`roe_flux` — Roe's approximate Riemann solver with an entropy
  fix (NSU3D-style convective discretization);
* :func:`van_leer_flux` — van Leer flux-vector splitting (the classic
  Cartesian-solver upwinding, our Cart3D analog).

Extra state columns beyond the five mean-flow variables (the SA working
variable) are upwinded passively with the interface mass flux.
"""

from __future__ import annotations

import numpy as np

from .gas import GAMMA, GM1, NVAR_EULER, conservative_to_primitive, pressure


def _split_normal(normal: np.ndarray):
    normal = np.asarray(normal, dtype=np.float64)
    area = np.linalg.norm(normal, axis=-1)
    safe = np.maximum(area, 1e-300)
    return normal / safe[..., None], area


def euler_flux(cons: np.ndarray, unit_normal: np.ndarray) -> np.ndarray:
    """Physical inviscid flux through a unit normal (per unit area)."""
    cons = np.asarray(cons, dtype=np.float64)
    prim = conservative_to_primitive(cons)
    rho, vel, p = prim[..., 0], prim[..., 1:4], prim[..., 4]
    vn = np.sum(vel * unit_normal, axis=-1)
    out = np.empty_like(cons)
    out[..., 0] = rho * vn
    out[..., 1:4] = (
        rho[..., None] * vel * vn[..., None] + p[..., None] * unit_normal
    )
    out[..., 4] = (cons[..., 4] + p) * vn
    if cons.shape[-1] > NVAR_EULER:
        out[..., NVAR_EULER:] = cons[..., NVAR_EULER:] * vn[..., None]
    return out


def max_wave_speed(cons: np.ndarray, unit_normal: np.ndarray) -> np.ndarray:
    prim = conservative_to_primitive(np.asarray(cons))
    vn = np.sum(prim[..., 1:4] * unit_normal, axis=-1)
    c = np.sqrt(GAMMA * prim[..., 4] / prim[..., 0])
    return np.abs(vn) + c


def rusanov_flux(ql: np.ndarray, qr: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Local Lax-Friedrichs flux; ``normal`` carries the face area."""
    n, area = _split_normal(normal)
    fl = euler_flux(ql, n)
    fr = euler_flux(qr, n)
    lam = np.maximum(max_wave_speed(ql, n), max_wave_speed(qr, n))
    flux = 0.5 * (fl + fr) - 0.5 * lam[..., None] * (
        np.asarray(qr, dtype=np.float64) - np.asarray(ql, dtype=np.float64)
    )
    return flux * area[..., None]


def roe_flux(
    ql: np.ndarray,
    qr: np.ndarray,
    normal: np.ndarray,
    entropy_fix: float = 0.05,
) -> np.ndarray:
    """Roe's approximate Riemann solver (Harten entropy fix).

    Implemented in the standard wave-decomposition form; state columns
    beyond the Euler block (the SA working variable) are upwinded with
    the interface mass flux.
    """
    ql = np.asarray(ql, dtype=np.float64)
    qr = np.asarray(qr, dtype=np.float64)
    n, area = _split_normal(normal)
    pl = conservative_to_primitive(ql)
    pr = conservative_to_primitive(qr)
    rho_l, u_l, p_l = pl[..., 0], pl[..., 1:4], pl[..., 4]
    rho_r, u_r, p_r = pr[..., 0], pr[..., 1:4], pr[..., 4]
    h_l = (ql[..., 4] + p_l) / rho_l
    h_r = (qr[..., 4] + p_r) / rho_r

    # Roe averages
    sl = np.sqrt(rho_l)
    sr = np.sqrt(rho_r)
    w = sl / (sl + sr)
    u = w[..., None] * u_l + (1 - w)[..., None] * u_r
    h = w * h_l + (1 - w) * h_r
    ke = 0.5 * np.sum(u * u, axis=-1)
    a2 = GM1 * (h - ke)
    a = np.sqrt(np.maximum(a2, 1e-12))
    un = np.sum(u * n, axis=-1)

    # wave strengths
    drho = rho_r - rho_l
    dp = p_r - p_l
    du = u_r - u_l
    dun = np.sum(du * n, axis=-1)
    rho_roe = sl * sr

    a1 = (dp - rho_roe * a * dun) / (2 * a2)  # u - a wave
    a3 = (dp + rho_roe * a * dun) / (2 * a2)  # u + a wave
    a2w = drho - dp / a2  # entropy wave
    # shear waves: velocity jump minus its normal part
    dut = du - dun[..., None] * n

    lam1 = np.abs(un - a)
    lam2 = np.abs(un)
    lam3 = np.abs(un + a)
    # Harten entropy fix on the nonlinear waves
    eps = entropy_fix * a
    for lam in (lam1, lam3):
        small = lam < eps
        lam[small] = (lam[small] ** 2 / np.maximum(eps[small], 1e-300)
                      + eps[small]) * 0.5

    nvar = ql.shape[-1]
    diss = np.zeros(ql.shape[:-1] + (NVAR_EULER,), dtype=np.float64)

    def add_wave(strength, lam, r0, r13, r4):
        diss[..., 0] += strength * lam * r0
        diss[..., 1:4] += (strength * lam)[..., None] * r13
        diss[..., 4] += strength * lam * r4

    add_wave(a1, lam1, 1.0, u - a[..., None] * n, h - a * un)
    add_wave(a2w, lam2, 1.0, u, ke)
    # shear contribution
    diss[..., 1:4] += (rho_roe * lam2)[..., None] * dut
    diss[..., 4] += rho_roe * lam2 * np.sum(u * dut, axis=-1)
    add_wave(a3, lam3, 1.0, u + a[..., None] * n, h + a * un)

    fl = euler_flux(ql[..., :NVAR_EULER], n)
    fr = euler_flux(qr[..., :NVAR_EULER], n)
    flux5 = 0.5 * (fl + fr) - 0.5 * diss

    if nvar > NVAR_EULER:
        flux = np.empty_like(ql)
        flux[..., :NVAR_EULER] = flux5
        # passive upwinding of extra variables with the mass flux
        mass = flux5[..., 0]
        nu_up = np.where(
            mass[..., None] >= 0,
            ql[..., NVAR_EULER:] / rho_l[..., None],
            qr[..., NVAR_EULER:] / rho_r[..., None],
        )
        flux[..., NVAR_EULER:] = mass[..., None] * nu_up
    else:
        flux = flux5
    return flux * area[..., None]


def van_leer_flux(ql: np.ndarray, qr: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Van Leer flux-vector splitting, F = F+(ql) + F-(qr)."""
    n, area = _split_normal(normal)
    flux = _van_leer_half(np.asarray(ql, dtype=np.float64), n, +1.0) + \
        _van_leer_half(np.asarray(qr, dtype=np.float64), n, -1.0)
    return flux * area[..., None]


def _van_leer_half(q: np.ndarray, n: np.ndarray, sign: float) -> np.ndarray:
    prim = conservative_to_primitive(q)
    rho, vel, p = prim[..., 0], prim[..., 1:4], prim[..., 4]
    a = np.sqrt(GAMMA * p / rho)
    vn = np.sum(vel * n, axis=-1)
    m = vn / a
    out = np.zeros_like(q)

    full = sign * m >= 1.0  # fully upwind
    if full.any():
        out[full] = euler_flux(q[full], n[full])
    sub = np.abs(m) < 1.0
    if sub.any():
        rs, vs, ps = rho[sub], vel[sub], p[sub]
        a_s, m_s, vn_s = a[sub], m[sub], vn[sub]
        n_s = n[sub]
        fmass = sign * 0.25 * rs * a_s * (m_s + sign) ** 2
        common = (-vn_s + sign * 2.0 * a_s) / GAMMA
        out_sub = np.zeros_like(q[sub])
        out_sub[..., 0] = fmass
        out_sub[..., 1:4] = fmass[..., None] * (
            vs + common[..., None] * n_s
        )
        # energy: van Leer's split enthalpy form
        h_split = (
            0.5 * np.sum(vs * vs, axis=-1)
            - 0.5 * vn_s**2
            + ((GM1) * vn_s + sign * 2 * a_s) ** 2 / (2 * (GAMMA**2 - 1.0))
        )
        out_sub[..., 4] = fmass * h_split
        if q.shape[-1] > NVAR_EULER:
            out_sub[..., NVAR_EULER:] = fmass[..., None] * (
                q[sub][..., NVAR_EULER:] / rs[..., None]
            )
        out[sub] = out_sub
    return out


def wall_flux(cons: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Slip-wall (inviscid) flux: pressure only, no mass crosses."""
    cons = np.asarray(cons, dtype=np.float64)
    n, area = _split_normal(normal)
    p = pressure(cons)
    out = np.zeros_like(cons)
    out[..., 1:4] = p[..., None] * n
    return out * area[..., None]
