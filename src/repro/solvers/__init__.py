"""Flow solvers: shared gas dynamics / fluxes / limiters, the NSU3D-style
RANS solver (``nsu3d``), the Cart3D-style Euler solver (``cart3d``), and
the unified case interface (:mod:`~repro.solvers.interface`) both expose."""

from . import cart3d, fluxes, gas, limiters
from .interface import (
    CaseResult,
    CaseSpec,
    ConvergenceHistory,
    SolverProtocol,
    case_result,
)

__all__ = [
    "gas",
    "fluxes",
    "limiters",
    "cart3d",
    "nsu3d",
    "CaseSpec",
    "CaseResult",
    "ConvergenceHistory",
    "SolverProtocol",
    "case_result",
]
