"""Flow solvers: shared gas dynamics / fluxes / limiters, the NSU3D-style
RANS solver (``nsu3d``) and the Cart3D-style Euler solver (``cart3d``)."""

from . import cart3d, fluxes, gas, limiters

__all__ = ["gas", "fluxes", "limiters", "cart3d", "nsu3d"]
