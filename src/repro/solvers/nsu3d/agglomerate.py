"""Agglomeration multigrid coarsening (paper section III, figs. 2-3).

"The agglomeration multigrid approach constructs coarse grid levels by
agglomerating or grouping together neighboring fine grid control
volumes, each of which is associated with a grid point ...  This is
accomplished through the use of a graph algorithm, and the resulting
merged control volumes on the coarse level form a smaller set of larger
more complex-shaped control volumes."

The algorithm here is the classic seed-based pass: visit vertices in
order, make each unassigned vertex a seed and absorb its unassigned
neighbors; absorb leftover singletons into their most strongly coupled
neighbor cluster.  The coarse level is itself a valid finite-volume
problem because the metrics *telescope*: coarse dual-face vectors are the
oriented sums of the fine face vectors crossing between agglomerates,
coarse volumes and boundary normals are plain sums — so a constant state
has zero residual on every level by construction.
"""

from __future__ import annotations

import numpy as np

from .context import FlowContext


def agglomerate(ctx: FlowContext, seed_order: np.ndarray | None = None):
    """One agglomeration pass; returns ``agglomerate_of`` (fine -> coarse
    cluster id, dense from 0)."""
    n = ctx.npoints
    edges = ctx.edges
    # adjacency in CSR
    from ...util.arrays import csr_from_edges

    xadj, adjncy, _ = csr_from_edges(n, edges)
    cluster = np.full(n, -1, dtype=np.int64)
    order = np.arange(n) if seed_order is None else np.asarray(seed_order)
    next_id = 0
    for v in order:
        if cluster[v] != -1:
            continue
        cluster[v] = next_id
        for u in adjncy[xadj[v] : xadj[v + 1]]:
            if cluster[u] == -1:
                cluster[u] = next_id
        next_id += 1

    # absorb singleton clusters into their strongest neighbor cluster
    sizes = np.bincount(cluster, minlength=next_id)
    if (sizes == 1).any():
        coupling = np.linalg.norm(ctx.face_vectors, axis=1)
        for v in np.flatnonzero(sizes[cluster] == 1):
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            if len(nbrs) == 0:
                continue
            others = nbrs[cluster[nbrs] != cluster[v]]
            if len(others) == 0:
                continue
            # strongest coupled neighbor
            best = others[0]
            cluster[v] = cluster[best]
        # re-densify ids
        uniq, cluster = np.unique(cluster, return_inverse=True)
    return cluster.astype(np.int64)


def coarsen_context(ctx: FlowContext, cluster: np.ndarray) -> FlowContext:
    """Build the agglomerated coarse-level context (telescoping metrics)."""
    ncoarse = int(cluster.max()) + 1
    vol = np.bincount(cluster, weights=ctx.volumes, minlength=ncoarse)
    pts = np.zeros((ncoarse, 3), dtype=np.float64)
    for d in range(3):
        pts[:, d] = np.bincount(
            cluster, weights=ctx.volumes * ctx.points[:, d], minlength=ncoarse
        ) / vol
    dist = np.bincount(
        cluster, weights=ctx.volumes * ctx.dist, minlength=ncoarse
    ) / vol

    # contract edges, orienting fine face vectors onto coarse edges
    ca = cluster[ctx.edges[:, 0]]
    cb = cluster[ctx.edges[:, 1]]
    keep = ca != cb
    ca, cb = ca[keep], cb[keep]
    s = ctx.face_vectors[keep].copy()
    flip = ca > cb
    s[flip] *= -1.0
    lo = np.minimum(ca, cb)
    hi = np.maximum(ca, cb)
    key = lo * ncoarse + hi
    uniq, inv = np.unique(key, return_inverse=True)
    face_vectors = np.zeros((len(uniq), 3), dtype=np.float64)
    np.add.at(face_vectors, inv, s)
    edges = np.column_stack([uniq // ncoarse, uniq % ncoarse])

    def agg_boundary(verts, normals):
        if len(verts) == 0:
            return np.empty(0, dtype=np.int64), np.empty((0, 3), dtype=np.float64)
        cv = cluster[verts]
        u, inv2 = np.unique(cv, return_inverse=True)
        agg = np.zeros((len(u), 3), dtype=np.float64)
        np.add.at(agg, inv2, normals)
        return u, agg

    wall_v, wall_n = agg_boundary(ctx.wall_vert, ctx.wall_normal)
    far_v, far_n = agg_boundary(ctx.far_vert, ctx.far_normal)
    sym_v, sym_n = agg_boundary(ctx.sym_vert, ctx.sym_normal)

    return FlowContext(
        points=pts,
        edges=edges,
        face_vectors=face_vectors,
        volumes=vol,
        dist=dist,
        mu_lam=ctx.mu_lam,
        wall_vert=wall_v,
        wall_normal=wall_n,
        far_vert=far_v,
        far_normal=far_n,
        sym_vert=sym_v,
        sym_normal=sym_n,
        lines=[],
        dual=None,
    )


def build_hierarchy(
    fine: FlowContext, nlevels: int, min_points: int = 8
) -> tuple[list, list]:
    """Recursive agglomeration: ([contexts fine->coarse], [cluster maps]).

    Stops early when a level would drop below ``min_points`` vertices or
    agglomeration stalls.
    """
    if nlevels < 1:
        raise ValueError("nlevels must be >= 1")
    contexts = [fine]
    maps = []
    for _ in range(nlevels - 1):
        ctx = contexts[-1]
        cluster = agglomerate(ctx)
        ncoarse = int(cluster.max()) + 1
        if ncoarse >= ctx.npoints or ncoarse < min_points:
            break
        contexts.append(coarsen_context(ctx, cluster))
        maps.append(cluster)
    return contexts, maps
