"""Spalart-Allmaras one-equation turbulence model (paper reference [8]).

NSU3D incorporates turbulence "through the solution of a standard
one-equation turbulence model, which is solved in a coupled manner along
with the flow equations" — the working variable ``nu_hat`` rides as the
sixth unknown of the coupled system.

The standard SA-I formulation is implemented (production, wall
destruction, diffusion with the cb2 gradient-squared term); the trip
terms are omitted (fully turbulent assumption, standard for RANS
cruise analysis).  Robustness clips follow common practice: ``S_hat``
floored, ``r`` capped at 10, negative ``nu_hat`` clipped on update.
"""

from __future__ import annotations

import numpy as np

# standard SA constants
CB1 = 0.1355
CB2 = 0.622
SIGMA = 2.0 / 3.0
KAPPA = 0.41
CW1 = CB1 / KAPPA**2 + (1.0 + CB2) / SIGMA
CW2 = 0.3
CW3 = 2.0
CV1 = 7.1


#: Cap on chi = nu_hat / nu_lam; keeps the algebra overflow-free while
#: far above any physically meaningful eddy-viscosity ratio.
CHI_MAX = 1.0e6


def fv1(chi: np.ndarray) -> np.ndarray:
    c3 = np.minimum(chi, CHI_MAX) ** 3
    return c3 / (c3 + CV1**3)


def eddy_viscosity(rho: np.ndarray, nu_hat: np.ndarray, mu_lam: float) -> np.ndarray:
    """mu_t = rho nu_hat fv1(chi)."""
    nu_lam = mu_lam / np.maximum(rho, 1e-300)
    nu = np.minimum(np.maximum(nu_hat, 0.0), CHI_MAX * nu_lam)
    chi = nu / nu_lam
    return rho * nu * fv1(chi)


def source_terms(
    rho: np.ndarray,
    nu_hat: np.ndarray,
    vort: np.ndarray,
    dist: np.ndarray,
    mu_lam: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(production, destruction) per unit volume for the rho*nu_hat
    equation (both >= 0; the residual adds destruction - production)."""
    nu_lam = mu_lam / np.maximum(rho, 1e-300)
    nu = np.minimum(np.maximum(nu_hat, 0.0), CHI_MAX * nu_lam)
    chi = nu / nu_lam
    f_v1 = fv1(chi)
    f_v2 = 1.0 - chi / (1.0 + chi * f_v1)
    d2 = dist**2
    s_hat = vort + nu / (KAPPA**2 * d2) * f_v2
    s_hat = np.maximum(s_hat, 0.3 * vort + 1e-16)  # standard floor
    production = CB1 * s_hat * nu
    r = np.minimum(nu / np.maximum(s_hat * KAPPA**2 * d2, 1e-30), 10.0)
    g = r + CW2 * (r**6 - r)
    f_w = g * ((1.0 + CW3**6) / (g**6 + CW3**6)) ** (1.0 / 6.0)
    destruction = CW1 * f_w * (nu / dist) ** 2
    return rho * production, rho * destruction


def diffusion_coefficient(
    rho_a, rho_b, nu_a, nu_b, mu_lam: float
) -> np.ndarray:
    """Edge diffusion coefficient (1/sigma)(mu_lam + rho nu_hat) at the
    face, for the edge-normal SA diffusion flux."""
    rho_f = 0.5 * (rho_a + rho_b)
    nu_f = 0.5 * (np.maximum(nu_a, 0.0) + np.maximum(nu_b, 0.0))
    return (mu_lam + rho_f * nu_f) / SIGMA


def cb2_term(grad_nu: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """The cb2/sigma rho (grad nu_hat)^2 production-like term, per unit
    volume (added to production)."""
    g2 = np.sum(grad_nu**2, axis=1)
    return CB2 / SIGMA * rho * g2
