"""NSU3DSolver — the high-fidelity RANS analysis facade.

Assembles the full paper pipeline: hybrid mesh -> median-dual metrics ->
implicit-line extraction -> agglomerated multigrid hierarchy ->
line-implicit FAS W-cycles for the coupled 6-equation RANS+SA system.
This is the object the figure-14(a) convergence study drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kernels import KernelConfig, make_engine, use_engine
from ...machine.counters import PerfCounters
from ...mesh.unstructured import (
    HybridMesh,
    build_dual,
    extract_lines,
)
from ...mesh.unstructured.dual import DualMesh
from ..gas import NVAR_EULER, NVAR_RANS, freestream, pressure
from ..interface import ConvergenceHistory, deprecated_accessor
from .agglomerate import build_hierarchy
from .context import context_from_dual
from .linesolve import smooth
from .multigrid import fas_cycle
from .residual import apply_wall_bc, residual_norm

#: Calibrated FLOP counts per point per residual / implicit smoothing
#: step, fed to the pfmon-style counters and the performance model.
FLOPS_PER_POINT_RESIDUAL = 1800.0
FLOPS_PER_POINT_IMPLICIT = 2600.0


@dataclass
class NSU3DHistory(ConvergenceHistory):
    """Deprecated alias of the unified
    :class:`~repro.solvers.interface.ConvergenceHistory`."""

    def __post_init__(self):
        deprecated_accessor(
            "NSU3DHistory", "repro.solvers.interface.ConvergenceHistory"
        )


class NSU3DSolver:
    """Unstructured RANS solver with line-implicit agglomeration multigrid.

    Parameters
    ----------
    mesh:
        A :class:`HybridMesh` (or pass ``dual`` directly).
    mach, alpha_deg, beta_deg:
        Flow condition (the paper's benchmark: M=0.75, 0deg incidence
        and sideslip).
    reynolds:
        Reynolds number per unit chord; sets the constant laminar
        viscosity ``mu = mach / reynolds``.
    mg_levels:
        Multigrid levels including the fine grid (paper: 4/5/6).
    turbulence:
        Couple the SA equation (6 unknowns/point) or run laminar (5).
    """

    def __init__(
        self,
        mesh: HybridMesh | None = None,
        dual: DualMesh | None = None,
        mach: float = 0.75,
        alpha_deg: float = 0.0,
        beta_deg: float = 0.0,
        reynolds: float = 1.0e5,
        mg_levels: int = 4,
        turbulence: bool = True,
        order2: bool = False,
        cfl: float = 20.0,
        cfl_start: float = 1.0,
        cfl_ramp: float = 1.5,
        nu1: int = 1,
        nu2: int = 1,
        use_lines: bool = True,
        counters: PerfCounters | None = None,
        kernel_config: KernelConfig | None = None,
    ):
        if dual is None:
            if mesh is None:
                raise ValueError("pass mesh or dual")
            dual = build_dual(mesh)
        lines = extract_lines(dual) if use_lines else []
        mu_lam = mach / reynolds
        fine = context_from_dual(dual, mu_lam=mu_lam, lines=lines)
        self.contexts, self.maps = build_hierarchy(fine, mg_levels)
        self.nvar = NVAR_RANS if turbulence else NVAR_EULER
        self.turbulence = turbulence
        self.order2 = order2
        self.qinf = freestream(
            mach, alpha_deg, beta_deg, nvar=self.nvar, nu_lam=mu_lam
        )
        self.mach = mach
        self.alpha_deg = alpha_deg
        self.cfl_max = cfl
        self.cfl = cfl_start
        self.cfl_ramp = cfl_ramp
        self.nu1, self.nu2 = nu1, nu2
        self.counters = counters if counters is not None else PerfCounters()
        self.kernel_config = (
            kernel_config if kernel_config is not None else KernelConfig()
        )
        self.engine = make_engine(self.kernel_config)
        self.q = apply_wall_bc(
            fine, np.tile(self.qinf, (fine.npoints, 1))
        )
        self.history = ConvergenceHistory()

    @property
    def mg_levels(self) -> int:
        return len(self.contexts)

    @property
    def size(self) -> int:
        """Unified mesh-size accessor (:class:`SolverProtocol`): grid points."""
        return self.contexts[0].npoints

    @property
    def npoints(self) -> int:
        """Deprecated: use :attr:`size`."""
        deprecated_accessor("NSU3DSolver.npoints", "NSU3DSolver.size")
        return self.size

    @property
    def ndof(self) -> int:
        """Six degrees of freedom per grid point (paper section VI)."""
        return self.size * self.nvar

    def run_cycle(self, cycle: str = "W") -> float:
        with self.counters.region("mg_cycle"), use_engine(self.engine):
            if self.mg_levels > 1:
                self.q = fas_cycle(
                    self.contexts, self.maps, self.q, self.qinf,
                    cycle=cycle, nu1=self.nu1, nu2=self.nu2, cfl=self.cfl,
                    order2=self.order2, turbulence=self.turbulence,
                )
            else:
                self.q = smooth(
                    self.contexts[0], self.q, self.qinf, cfl=self.cfl,
                    nsteps=self.nu1 + self.nu2, order2=self.order2,
                    turbulence=self.turbulence,
                )
            work = sum(
                c.npoints
                * (FLOPS_PER_POINT_RESIDUAL + FLOPS_PER_POINT_IMPLICIT)
                * (2 ** min(i, 5) if cycle == "W" else 1)
                for i, c in enumerate(self.contexts)
            )
            self.counters.add_flops(work)
        self.cfl = min(self.cfl * self.cfl_ramp, self.cfl_max)
        r = self.residual_norm()
        self.history.residuals.append(r)
        self.history.forces.append(self.forces())
        return r

    def solve(
        self, ncycles: int = 100, tol_orders: float = 6.0, cycle: str = "W"
    ) -> ConvergenceHistory:
        r0 = None
        for _ in range(ncycles):
            r = self.run_cycle(cycle=cycle)
            if r0 is None:
                r0 = max(r, 1e-300)
            if r <= r0 * 10.0 ** (-tol_orders):
                break
        return self.history

    def forces(self) -> dict:
        """Wall pressure force integration (friction omitted — recorded
        as a substitution in DESIGN.md; drag here is pressure drag).

        Returns the same coefficient keys as the Cart3D side
        (``fx fy fz cl cd cm``) so database records are solver-agnostic.
        """
        ctx = self.contexts[0]
        if len(ctx.wall_vert) == 0:
            return {k: 0.0 for k in ("fx", "fy", "fz", "cl", "cd", "cm")}
        p = pressure(self.q[ctx.wall_vert])
        pinf = pressure(self.qinf[None, :])[0]
        df = (p - pinf)[:, None] * ctx.wall_normal
        force = df.sum(axis=0)
        centers = ctx.points[ctx.wall_vert]
        arm = centers - centers.mean(axis=0)
        moment = np.cross(arm, df).sum(axis=0)
        qdyn = 0.5 * self.mach**2
        sref = np.abs(ctx.wall_normal[:, 2]).sum()
        a = np.radians(self.alpha_deg)
        drag_dir = np.array([np.cos(a), 0.0, np.sin(a)])
        lift_dir = np.array([-np.sin(a), 0.0, np.cos(a)])
        denom = max(qdyn * sref, 1e-300)
        return {
            "fx": float(force[0]),
            "fy": float(force[1]),
            "fz": float(force[2]),
            "cd": float(force @ drag_dir) / denom,
            "cl": float(force @ lift_dir) / denom,
            "cm": float(moment[1]) / denom,
        }

    def residual_norm(self) -> float:
        with use_engine(self.engine):
            return residual_norm(
                self.contexts[0], self.q, self.qinf, order2=self.order2,
                turbulence=self.turbulence,
            )
