"""6x6 block Jacobians for the implicit smoothers (paper section III).

"Rather than performing simple explicit time steps on each grid level
... the use of local implicit solvers at each grid point provides a more
efficient solution mechanism.  This mandates the inversion of dense 6x6
block matrices at each grid point at each iteration."

The blocks linearize a Rusanov-form flux: for edge (a, b) with dual face
``S`` (oriented a->b) and spectral radius ``lam``,

    dR_a/dq_a = +1/2 A(q_a) . S + 1/2 lam I + k_visc I
    dR_a/dq_b = +1/2 A(q_b) . S - 1/2 lam I - k_visc I
    dR_b/dq_b = -1/2 A(q_b) . S + 1/2 lam I + k_visc I
    dR_b/dq_a = -1/2 A(q_a) . S - 1/2 lam I - k_visc I

with ``A`` the analytic Euler flux Jacobian and ``k_visc`` the edge
viscous coefficient.  The SA row couples through its advection speed and
a destruction-term diagonal.  Diagonal blocks add ``V/dt`` for the
pseudo-time term; wall-vertex momentum/SA rows are replaced by identity
(strong boundary condition).
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ..gas import GAMMA, conservative_to_primitive, variable_layout
from .context import FlowContext
from .turbulence import CW1, eddy_viscosity


def euler_jacobian(q: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Analytic flux Jacobian A . S for conservative variables.

    ``q`` is (N, nvar >= 5); ``normal`` (N, 3) carries the face area.
    Returns (N, nvar, nvar); the SA row/column holds passive advection.
    The assembly itself lives in :mod:`repro.kernels` and runs on the
    active engine.
    """
    return get_engine().euler_jacobian(q, normal)


def edge_spectral_radius(q: np.ndarray, edges, face_vectors) -> np.ndarray:
    """(|vn| + c) |S| at each edge from the face-average state."""
    from ..gas import pressure

    qa = q[edges[:, 0]]
    qb = q[edges[:, 1]]
    qm = 0.5 * (qa + qb)
    area = np.linalg.norm(face_vectors, axis=1)
    u = qm[:, 1:4] / qm[:, 0:1]
    vn = np.abs(np.einsum("ed,ed->e", u, face_vectors))
    c = np.sqrt(GAMMA * np.maximum(pressure(qm), 1e-12) / qm[:, 0])
    return vn + c * area


def viscous_edge_coefficient(ctx: FlowContext, q: np.ndarray) -> np.ndarray:
    """Scalar viscous stiffness per edge, mu_eff |S| / d."""
    if ctx.mu_lam <= 0.0:
        return np.zeros(ctx.nedges, dtype=np.float64)
    layout = variable_layout(q.shape[1])
    prim = conservative_to_primitive(q)
    mu_t = (
        eddy_viscosity(prim[:, 0], prim[:, layout.turbulence[0]], ctx.mu_lam)
        if layout.turbulence
        else np.zeros(ctx.npoints, dtype=np.float64)
    )
    a = ctx.edges[:, 0]
    b = ctx.edges[:, 1]
    area = np.linalg.norm(ctx.face_vectors, axis=1)
    mu_f = ctx.mu_lam + 0.5 * (mu_t[a] + mu_t[b])
    return mu_f * area / ctx.edge_distances()


def sa_destruction_diagonal(ctx: FlowContext, q: np.ndarray) -> np.ndarray:
    """Pointwise SA destruction linearization per turbulence column.

    Returns ``(N, nturb)`` diagonal increments (``V * 2 cw1 nu / d^2``
    for each working variable).  Kept separate from
    :func:`assemble_diagonal`'s edge terms so the distributed path can
    exclude it from the cross-rank exchange-add (it is pointwise, not
    edge-split — summing ghost copies would double-count it at owners)
    and re-add it locally afterwards.
    """
    layout = variable_layout(q.shape[1])
    prim = conservative_to_primitive(q)
    out = np.empty((ctx.npoints, len(layout.turbulence)), dtype=np.float64)
    for j, var in enumerate(layout.turbulence):
        nu = np.maximum(prim[:, var], 0.0)
        out[:, j] = ctx.volumes * 2.0 * CW1 * nu / ctx.dist**2
    return out


def assemble_diagonal(
    ctx: FlowContext,
    q: np.ndarray,
    dt: np.ndarray,
    include_convective_jacobian: bool = True,
    sa_destruction: bool = True,
) -> np.ndarray:
    """(N, nvar, nvar) diagonal blocks of the implicit system.

    ``sa_destruction=False`` leaves out the pointwise SA destruction
    diagonal (:func:`sa_destruction_diagonal`); the distributed smoother
    exchanges only the edge-split part and re-adds the pointwise term
    after the cross-rank sum.
    """
    nvar = q.shape[1]
    layout = variable_layout(nvar)
    n = ctx.npoints
    eye = np.eye(nvar)
    diag = (ctx.volumes / dt)[:, None, None] * eye[None, :, :]

    a = ctx.edges[:, 0]
    b = ctx.edges[:, 1]
    lam = edge_spectral_radius(q, ctx.edges, ctx.face_vectors)
    kv = viscous_edge_coefficient(ctx, q)
    scal = 0.5 * lam + kv  # identity part, both endpoints

    engine = get_engine()
    scal_acc = np.zeros(n, dtype=np.float64)
    engine.scatter_add(scal_acc, a, scal)
    engine.scatter_add(scal_acc, b, scal)
    if include_convective_jacobian:
        ja, jb = engine.edge_jacobians(q[a], q[b], ctx.face_vectors)
        engine.scatter_add(diag, a, 0.5 * ja)
        engine.scatter_add(diag, b, -0.5 * jb)
    diag += scal_acc[:, None, None] * eye[None, :, :]

    # boundary spectral radii keep the diagonal dominant at boundaries
    for verts, normals in (
        (ctx.far_vert, ctx.far_normal),
        (ctx.sym_vert, ctx.sym_normal),
        (ctx.wall_vert, ctx.wall_normal),
    ):
        if len(verts):
            lam_b = edge_spectral_radius(
                np.vstack([q[verts]]),
                np.column_stack([np.arange(len(verts))] * 2),
                normals,
            )
            contrib = 0.5 * lam_b[:, None, None] * eye[None, :, :]
            engine.scatter_add(diag, verts, contrib)

    # SA destruction linearization (adds to the diagonal only)
    if layout.turbulence and sa_destruction:
        dest = sa_destruction_diagonal(ctx, q)
        for j, var in enumerate(layout.turbulence):
            diag[:, var, var] += dest[:, j]

    # strong wall rows -> identity
    w = ctx.wall_vert
    if len(w):
        for row in layout.momentum + layout.turbulence:
            diag[w, row, :] = 0.0
            diag[w, row, row] = 1.0
    return diag


def edge_offdiagonals(
    ctx: FlowContext, q: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Off-diagonal blocks per edge: (dR_a/dq_b, dR_b/dq_a)."""
    nvar = q.shape[1]
    a = ctx.edges[:, 0]
    b = ctx.edges[:, 1]
    lam = edge_spectral_radius(q, ctx.edges, ctx.face_vectors)
    kv = viscous_edge_coefficient(ctx, q)
    eye = np.eye(nvar)[None, :, :]
    ja, jb = get_engine().edge_jacobians(q[a], q[b], ctx.face_vectors)
    scal = (0.5 * lam + kv)[:, None, None] * eye
    off_ab = 0.5 * jb - scal
    off_ba = -0.5 * ja - scal
    return off_ab, off_ba


def local_time_step(ctx: FlowContext, q: np.ndarray, cfl: float) -> np.ndarray:
    """CFL-scaled local pseudo-time step per vertex."""
    lam = edge_spectral_radius(q, ctx.edges, ctx.face_vectors)
    kv = viscous_edge_coefficient(ctx, q)
    engine = get_engine()
    acc = np.zeros(ctx.npoints, dtype=np.float64)
    engine.scatter_add(acc, ctx.edges[:, 0], lam + 2 * kv)
    engine.scatter_add(acc, ctx.edges[:, 1], lam + 2 * kv)
    for verts, normals in (
        (ctx.far_vert, ctx.far_normal),
        (ctx.sym_vert, ctx.sym_normal),
        (ctx.wall_vert, ctx.wall_normal),
    ):
        if len(verts):
            lam_b = edge_spectral_radius(
                q[verts],
                np.column_stack([np.arange(len(verts))] * 2),
                normals,
            )
            engine.scatter_add(acc, verts, lam_b)
    return cfl * ctx.volumes / np.maximum(acc, 1e-300)
