"""NSU3D physics kernels for the unified distributed runtime.

The distributed-execution structure — partitioning, ghost numbering,
exchange scheduling, the cycle loop, multigrid transfers — lives in
:mod:`repro.runtime` (one stack for both solvers; lint rule R008 keeps
it that way).  This module contributes only what is NSU3D-specific:

* the rank-local :class:`FlowContext` payload built from a halo,
* :class:`NSU3DKernels` — the dict-of-partitions residual/smoother/
  transfer hooks the :class:`~repro.runtime.driver.DistributedSolveDriver`
  drives (preconditioned-multistage line-implicit smoothing with the
  implicit operator's edge contributions summed across ranks, fig. 6),
* thin deprecated shims (``partition_domain``, ``parallel_residual``,
  ``parallel_smooth``, ``parallel_residual_norm``, ``LocalDomain``)
  preserving the historical single-partition call signatures, and
* the :class:`ParallelNSU3D` config facade.

Because implicit lines are never split by the partitioner (fig. 6b),
the block-tridiagonal solves remain rank-local.  State width is carried
as data: the :class:`~repro.solvers.gas.VariableLayout` derived from
``qinf`` threads through the kernels into the runtime, so the same
driver runs the 5-variable laminar/inviscid system and the 6-variable
SA-RANS one.  The SA source terms are evaluated at owned rows from
halo-completed Green-Gauss gradients — each rank's partial surface sums
are exchange-added to their owners (every dual face lives on exactly
one rank) before dividing by the control volumes, the residual's own
partial-sum/complete/finalize pattern.

Correctness contract (tested): per-rank results equal the serial solver
on the same mesh to floating-point-reassociation tolerance — smoothing
and full FAS cycles, overlap on or off.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...kernels import KernelConfig, make_engine, use_engine
from ...runtime import (
    DistributedDomain,
    DistributedSolveDriver,
    LevelSpec,
    MetisLinePartitioner,
    RuntimeConfig,
    build_domain_hierarchy,
    make_exchanger,
    merge_kernel_config,
    resolve_config,
)
from ..gas import (
    apply_positivity_floors,
    conservative_to_primitive,
    variable_layout,
)
from .context import FlowContext
from .gradients import GradientSurface, green_gauss_sums, vorticity_magnitude
from .jacobians import (
    assemble_diagonal,
    edge_offdiagonals,
    edge_spectral_radius,
    sa_destruction_diagonal,
    viscous_edge_coefficient,
)
from .linesolve import (
    STAGE_COEFFS,
    _edge_lookup,
    batch_lines_by_length,
    limit_correction,
    line_offdiag_blocks,
)
from .residual import (
    apply_wall_bc,
    mask_wall_rows,
    residual,
    sa_source_residual,
)
from .solver import FLOPS_PER_POINT_RESIDUAL


class LocalDomain(DistributedDomain):
    """Deprecated pre-runtime name for an NSU3D rank-local domain.

    Kept so historical constructors keep working; ``nowned`` now derives
    from the halo and the third positional argument is ignored.
    """

    def __init__(self, halo, ctx: FlowContext, nowned: int | None = None):
        super().__init__(halo, ctx)


def _local_flow_context(ctx: FlowContext, h: Any, part: np.ndarray) -> FlowContext:
    """Rank-local :class:`FlowContext` payload for one halo: geometry in
    local numbering, boundary lists owned-only, lines rank-local.

    On the fine level the context carries a rank-local
    :class:`~repro.solvers.nsu3d.gradients.GradientSurface` — this
    rank's dual faces plus the owned boundary closure — so the serial
    Green-Gauss kernels produce partial surface sums whose exchange-add
    completes them exactly (each dual face lives on one rank, each
    boundary face on its vertex's owner).
    """
    l2g = h.local_to_global()
    g2l = np.full(ctx.npoints, -1, dtype=np.int64)
    g2l[l2g] = np.arange(len(l2g))
    owned_mask = np.zeros(ctx.npoints, dtype=bool)
    owned_mask[h.owned_global] = True

    def filter_boundary(
        verts: np.ndarray, normals: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sel = owned_mask[verts]
        return g2l[verts[sel]], normals[sel]

    wall_v, wall_n = filter_boundary(ctx.wall_vert, ctx.wall_normal)
    far_v, far_n = filter_boundary(ctx.far_vert, ctx.far_normal)
    sym_v, sym_n = filter_boundary(ctx.sym_vert, ctx.sym_normal)
    local_lines = [
        g2l[line] for line in ctx.lines if part[line[0]] == h.rank
    ]
    dual: GradientSurface | None = None
    if ctx.dual is not None:
        bsel = owned_mask[ctx.dual.bvert]
        dual = GradientSurface(
            edges=h.edges,
            face_vectors=ctx.face_vectors[h.edge_gids],
            volumes=ctx.volumes[l2g],
            bvert=g2l[ctx.dual.bvert[bsel]],
            bnormal=ctx.dual.bnormal[bsel],
        )
    return FlowContext(
        points=ctx.points[l2g],
        edges=h.edges,
        face_vectors=ctx.face_vectors[h.edge_gids],
        volumes=ctx.volumes[l2g],
        dist=ctx.dist[l2g],
        mu_lam=ctx.mu_lam,
        wall_vert=wall_v,
        wall_normal=wall_n,
        far_vert=far_v,
        far_normal=far_n,
        sym_vert=sym_v,
        sym_normal=sym_n,
        lines=local_lines,
        dual=dual,
    )


def _split_residual_contexts(dom: DistributedDomain) -> tuple:
    """(interior, ghost) context split for overlapped exchange: interior
    edges touch only owned vertices (computable while ghost updates are
    in transit); ghost edges carry everything else.  Boundary lists are
    owned-only and go with the interior part.  Valid because the split
    residual runs with ``sa_sources=False`` — purely edge- and
    boundary-based terms; the pointwise SA sources are added once from
    halo-completed gradients after the exchange finishes."""
    cached = dom.cache.get("nsu3d_split")
    if cached is None:
        ctx = dom.ctx
        gmask = (ctx.edges >= dom.nowned).any(axis=1)
        interior = FlowContext(
            points=ctx.points, edges=ctx.edges[~gmask],
            face_vectors=ctx.face_vectors[~gmask], volumes=ctx.volumes,
            dist=ctx.dist, mu_lam=ctx.mu_lam, wall_vert=ctx.wall_vert,
            wall_normal=ctx.wall_normal, far_vert=ctx.far_vert,
            far_normal=ctx.far_normal, sym_vert=ctx.sym_vert,
            sym_normal=ctx.sym_normal, lines=[], dual=None,
        )
        ghost = FlowContext(
            points=ctx.points, edges=ctx.edges[gmask],
            face_vectors=ctx.face_vectors[gmask], volumes=ctx.volumes,
            dist=ctx.dist, mu_lam=ctx.mu_lam, lines=[], dual=None,
        )
        cached = (interior, ghost)
        dom.cache["nsu3d_split"] = cached
    return cached


class NSU3DKernels:
    """NSU3D's :class:`~repro.runtime.driver.SolverKernels`."""

    name = "nsu3d"
    #: coarse levels tolerate the fine CFL (historical ``coarse_cfl or
    #: cfl`` behavior) — see the policy in :mod:`repro.runtime.multigrid`
    coarse_cfl_fraction = 1.0

    def __init__(self, qinf: np.ndarray, viscous: bool = True,
                 kernel_config: KernelConfig | None = None,
                 turbulence: bool | None = None):
        self.qinf = np.asarray(qinf, dtype=np.float64)
        self.viscous = viscous
        #: the state width travels as data, not as hard-coded slots —
        #: every runtime layer (domain state, slab carving, exchange
        #: blocks) derives its width from this layout
        self.layout = variable_layout(len(self.qinf))
        self.turbulence = (
            turbulence if turbulence is not None
            else bool(self.layout.turbulence)
        )
        self.kernel_config = (
            kernel_config if kernel_config is not None else KernelConfig()
        )
        # engines hold no compiled state, so the kernels object (and with
        # it the engine choice) stays picklable for WorkerSpec transport
        self.engine = make_engine(self.kernel_config)

    # -- driver hooks --------------------------------------------------------

    def init_state(self, dom) -> np.ndarray:
        return np.tile(self.qinf, (dom.nlocal, 1))

    def volumes(self, dom) -> np.ndarray:
        return dom.ctx.volumes

    def fix_restricted_state(self, dom, q: np.ndarray) -> np.ndarray:
        # the restricted base state must satisfy the coarse level's own
        # strong wall condition, or the correction q_c - q_c0 acquires a
        # spurious momentum component at every wall agglomerate
        return apply_wall_bc(dom.ctx, q)

    def mask_forcing(self, dom, f: np.ndarray) -> np.ndarray:
        return mask_wall_rows(dom.ctx, f)

    def defect(self, X, doms, qs, forcing=None) -> dict:
        with use_engine(self.engine):
            return self._completed_residual(X, doms, qs, forcing, None)

    def residual_norm(self, comm, X, doms, qs) -> float:
        """Global volume-scaled L2 continuity-residual norm (allreduce)."""
        rs = self.defect(X, doms, qs)
        local_sq = 0.0
        local_n = 0.0
        for p, dom in doms.items():
            own = slice(0, dom.nowned)
            local_sq += float(
                np.sum((rs[p][own, 0] / dom.ctx.volumes[own]) ** 2)
            )
            local_n += float(dom.nowned)
        total = comm.allreduce(np.array([local_sq, local_n]))
        return float(np.sqrt(total[0] / total[1]))

    def apply_correction(self, comm: Any, X: Any, doms: dict, qs: dict,
                         dqs: dict) -> dict:
        turb_ref = self._turbulence_reference(comm, doms, qs)
        out = {}
        for p, dom in doms.items():
            cand = apply_wall_bc(
                dom.ctx, limit_correction(qs[p], dqs[p], turb_ref=turb_ref)
            )
            out[p] = apply_positivity_floors(cand)
        return out

    def _turbulence_reference(
        self, comm: Any, doms: dict, qs: dict
    ) -> np.ndarray | None:
        """Global field maxima of the turbulence working variables.

        The correction limiter's growth floor is tied to the largest
        working-variable level *in the field*; an allreduce-max over
        owned rows (exact — max is order-independent) hands every rank
        the serial reference, so partitioning does not change the
        limiter."""
        layout = self.layout
        if not layout.turbulence:
            return None
        local = np.zeros(len(layout.turbulence), dtype=np.float64)
        for p, dom in doms.items():
            own = qs[p][: dom.nowned]
            for j, var in enumerate(layout.turbulence):
                local[j] = max(local[j], float(np.abs(own[:, var]).max()))
        result: np.ndarray = comm.allreduce(local, op="max")
        return result

    def smooth(self, X, doms, qs, *, forcing=None, cfl: float = 10.0,
               nsteps: int = 1, overlap: bool = False,
               in_cycle: bool = False) -> dict:
        """Preconditioned-multistage implicit smoothing, decomposed.

        Each step freezes the implicit operator (exchanged diagonal +
        rank-local line blocks) at the step's initial state and runs the
        three-stage recursion; ghost refresh per stage, overlapped with
        the next stage's interior residual when ``overlap`` is set.
        """
        del in_cycle  # NSU3D's guards are identical in and out of a cycle
        engine = self.engine
        with use_engine(engine):
            qs = {p: apply_wall_bc(doms[p].ctx, qs[p]) for p in sorted(doms)}
            X.copy(qs, tag=13)
            pending = None
            for _ in range(nsteps):
                if pending is not None:
                    pending.finish()
                    pending = None
                dt = self._time_step(X, doms, qs, cfl)
                diag = self._diagonal(X, doms, qs, dt)
                lineops = {p: self._line_structures(doms[p], qs[p])
                           for p in doms}
                # freeze the per-step operator through the engine: gather
                # each group's line diagonals once and factor the
                # off-line blocks once — the three stages reuse them
                line_diags = {
                    p: {length: diag[p][batch]
                        for length, batch in lineops[p][0].items()}
                    for p in doms
                }
                rest_factors = {
                    p: engine.block_factor(diag[p][~lineops[p][2]])
                    if (~lineops[p][2]).any() else None
                    for p in doms
                }
                q0 = {p: qs[p].copy() for p in doms}
                # the limiter's growth floor references the step-initial
                # state, identically on every rank (allreduce-max)
                turb_ref = self._turbulence_reference(X.comm, doms, q0)
                for alpha in STAGE_COEFFS:
                    rs = self._completed_residual(
                        X, doms, qs, forcing, pending
                    )
                    pending = None
                    for p, dom in doms.items():
                        batches, blocks, on_line = lineops[p]
                        r = rs[p]
                        dq = np.zeros_like(r)
                        systems = [
                            (blocks[length][0], line_diags[p][length],
                             blocks[length][1], r[batch])
                            for length, batch in batches.items()
                        ]
                        sols = engine.thomas(systems)
                        for batch, sol in zip(batches.values(), sols):
                            dq[batch.reshape(-1)] = sol.reshape(
                                -1, r.shape[1]
                            )
                        rest = ~on_line
                        if rest.any():
                            dq[rest] = rest_factors[p].solve(r[rest])
                        cand = apply_wall_bc(
                            dom.ctx,
                            limit_correction(q0[p], -alpha * dq,
                                             turb_ref=turb_ref),
                        )
                        for var in self.layout.turbulence:
                            cand[:, var] = np.maximum(cand[:, var], 0.0)
                        qs[p] = apply_positivity_floors(cand)
                    if overlap:
                        pending = X.start_copy(qs, tag=14)
                    else:
                        X.copy(qs, tag=14)
            if pending is not None:
                pending.finish()
        return qs

    # -- internals -----------------------------------------------------------

    def _completed_residual(self, X: Any, doms: dict, qs: dict,
                            forcing: dict | None, pending: Any) -> dict:
        """Residual completed across ranks: local evaluation (split into
        interior/ghost parts when finishing an overlapped exchange),
        exchange-add to owners, ghost rows zeroed, SA sources added at
        owned rows from halo-completed gradients, strong wall rows
        re-imposed, forcing subtracted."""
        rs = {}
        if pending is None:
            for p, dom in doms.items():
                rs[p] = residual(dom.ctx, qs[p], self.qinf,
                                 turbulence=self.turbulence,
                                 viscous=self.viscous, sa_sources=False)
            X.charge(self._flops(doms))
        else:
            # paper fig. 7: compute the interior while ghost values are
            # in transit, then finish the exchange and add the
            # ghost-touching edge contributions
            for p, dom in doms.items():
                interior, _ghost = _split_residual_contexts(dom)
                rs[p] = residual(interior, qs[p], self.qinf,
                                 turbulence=self.turbulence,
                                 viscous=self.viscous, sa_sources=False)
            X.charge(self._flops(doms))
            pending.finish()
            for p, dom in doms.items():
                _interior, ghost = _split_residual_contexts(dom)
                rs[p] = rs[p] + residual(ghost, qs[p], self.qinf,
                                         turbulence=self.turbulence,
                                         viscous=self.viscous,
                                         sa_sources=False)
        # the gradient pass reads ghost state, so it runs only after the
        # exchange above has finished (sanitizer-safe)
        sa = self._sa_fields(X, doms, qs)
        X.add(rs, tag=1)
        out = {}
        sa_var = self.layout.turbulence[0] if self.layout.turbulence else None
        for p, dom in doms.items():
            r = rs[p]
            r[dom.nowned:] = 0.0
            if sa is not None:
                # pointwise SA sources at owned rows (each vertex is
                # owned by exactly one rank — no double counting)
                vort, grad_nu = sa[p]
                ctx = dom.ctx
                own = slice(0, dom.nowned)
                prim = conservative_to_primitive(qs[p][own])
                r[own, sa_var] += sa_source_residual(
                    prim[:, 0], prim[:, sa_var], vort[own], grad_nu[own],
                    ctx.dist[own], ctx.mu_lam, ctx.volumes[own],
                )
            # remote edge contributions landed after residual()'s own
            # masking; re-impose the strong wall rows
            r = mask_wall_rows(dom.ctx, r)
            if forcing is not None:
                r = r - forcing[p]
            out[p] = r
        return out

    def _sa_fields(self, X: Any, doms: dict, qs: dict) -> dict | None:
        """Halo-completed vorticity magnitude and SA-gradient fields,
        ``{pid: (vort, grad_nu)}`` (or ``None`` when SA sources are off).

        Fine levels accumulate each rank's partial Green-Gauss surface
        sums over its :class:`GradientSurface` and complete them with an
        exchange-add before dividing by the control volumes; coarse
        (agglomerated) levels complete the edge-difference vorticity
        estimate the same way.  Ghost rows of the completed sums are
        zeroed by the exchange — the sources are only evaluated at owned
        rows."""
        layout = self.layout
        any_dom = next(iter(doms.values()))
        if not (self.turbulence and layout.turbulence and self.viscous
                and any_dom.ctx.mu_lam > 0.0):
            return None
        engine = self.engine
        sa_var = layout.turbulence[0]
        out: dict = {}
        if any_dom.ctx.dual is not None:
            sums = {}
            for p, dom in doms.items():
                prim = conservative_to_primitive(qs[p])
                fields = np.column_stack([prim[:, 1:4], prim[:, sa_var]])
                sums[p] = green_gauss_sums(dom.ctx.dual, fields).reshape(
                    dom.nlocal, 3 * fields.shape[1]
                )
            X.add(sums, tag=15)
            for p, dom in doms.items():
                grads = sums[p].reshape(dom.nlocal, 3, -1)
                grads = grads / dom.ctx.volumes[:, None, None]
                out[p] = (
                    vorticity_magnitude(grads[:, :, :3]), grads[:, :, 3]
                )
            return out
        accs = {}
        for p, dom in doms.items():
            ctx = dom.ctx
            prim = conservative_to_primitive(qs[p])
            vel = prim[:, 1:4]
            a = ctx.edges[:, 0]
            b = ctx.edges[:, 1]
            rate = (
                np.linalg.norm(vel[b] - vel[a], axis=1)
                / ctx.edge_distances()
            )
            acc = np.zeros((ctx.npoints, 2), dtype=np.float64)
            engine.scatter_add(acc[:, 0], a, rate)
            engine.scatter_add(acc[:, 0], b, rate)
            engine.scatter_add(acc[:, 1], a, 1.0)
            engine.scatter_add(acc[:, 1], b, 1.0)
            accs[p] = acc
        X.add(accs, tag=16)
        for p, dom in doms.items():
            vort = accs[p][:, 0] / np.maximum(accs[p][:, 1], 1.0)
            out[p] = (
                vort, np.zeros((dom.nlocal, 3), dtype=np.float64)
            )
        return out

    def _time_step(self, X, doms, qs, cfl) -> dict:
        """Local spectral-radius accumulation completed across ranks."""
        engine = self.engine
        accs = {}
        for p, dom in doms.items():
            ctx = dom.ctx
            q = qs[p]
            lam = edge_spectral_radius(q, ctx.edges, ctx.face_vectors)
            kv = viscous_edge_coefficient(ctx, q)
            acc = np.zeros((ctx.npoints, 1), dtype=np.float64)
            engine.scatter_add(acc[:, 0], ctx.edges[:, 0], lam + 2 * kv)
            engine.scatter_add(acc[:, 0], ctx.edges[:, 1], lam + 2 * kv)
            for verts, normals in (
                (ctx.far_vert, ctx.far_normal),
                (ctx.sym_vert, ctx.sym_normal),
                (ctx.wall_vert, ctx.wall_normal),
            ):
                if len(verts):
                    lam_b = edge_spectral_radius(
                        q[verts],
                        np.column_stack([np.arange(len(verts))] * 2),
                        normals,
                    )
                    engine.scatter_add(acc[:, 0], verts, lam_b)
            accs[p] = acc
        X.add(accs, tag=11)
        return {
            p: cfl * dom.ctx.volumes / np.maximum(accs[p][:, 0], 1e-300)
            for p, dom in doms.items()
        }

    def _diagonal(self, X: Any, doms: dict, qs: dict, dt: dict) -> dict:
        """Implicit diagonal blocks with edge contributions summed
        across ranks (each cross edge lives on exactly one rank).

        Pointwise terms — the V/dt identity and the SA destruction
        linearization — are kept out of the exchanged part (summing
        their ghost copies would double-count them at owners) and
        re-added locally after the cross-rank sum."""
        layout = self.layout
        flats = {}
        vdts = {}
        for p, dom in doms.items():
            ctx = dom.ctx
            q = qs[p]
            nvar = q.shape[1]
            # edge-only contributions: subtract the V/dt identity that
            # assemble_diagonal always adds before exchanging
            diag = assemble_diagonal(ctx, q, dt[p], sa_destruction=False)
            eye = np.eye(nvar)
            vdt = (ctx.volumes / dt[p])[:, None, None] * eye[None, :, :]
            edge_part = diag - vdt
            flats[p] = edge_part.reshape(ctx.npoints, nvar * nvar)
            vdts[p] = vdt
        X.add(flats, tag=12)
        out = {}
        for p, dom in doms.items():
            ctx = dom.ctx
            nvar = qs[p].shape[1]
            total = flats[p].reshape(ctx.npoints, nvar, nvar) + vdts[p]
            if layout.turbulence:
                dest = sa_destruction_diagonal(ctx, qs[p])
                for j, var in enumerate(layout.turbulence):
                    total[:, var, var] += dest[:, j]
            # strong wall rows were summed over; rebuild them as identity
            w = ctx.wall_vert
            if len(w):
                for row in layout.momentum + layout.turbulence:
                    total[w, row, :] = 0.0
                    total[w, row, row] = 1.0
            out[p] = total
        return out

    def _line_structures(self, dom, q) -> tuple:
        """Per-step frozen line-implicit structures (fig. 6b: lines are
        never split, so these stay rank-local).  The per-edge Jacobians
        and the edge lookup are computed once and shared by every batch.
        """
        batches = batch_lines_by_length(dom.ctx.lines)
        offdiags = edge_offdiagonals(dom.ctx, q) if batches else None
        lookup = _edge_lookup(dom.ctx) if batches else None
        blocks = {
            length: line_offdiag_blocks(
                dom.ctx, q, batch, offdiags=offdiags, lookup=lookup
            )
            for length, batch in batches.items()
        }
        on_line = np.zeros(dom.nlocal, dtype=bool)
        for batch in batches.values():
            on_line[batch.ravel()] = True
        return batches, blocks, on_line

    def _flops(self, doms) -> float:
        return float(sum(
            dom.ctx.npoints * FLOPS_PER_POINT_RESIDUAL
            for dom in doms.values()
        ))


# -- deprecated single-partition shims ---------------------------------------


def partition_domain(
    ctx: FlowContext, nparts: int, seed: int = 0
) -> tuple[list, np.ndarray]:
    """Split a (fine-level) context into per-rank domains.

    .. deprecated::
        Kept as a shim over :mod:`repro.runtime` — build domains with
        :class:`~repro.runtime.MetisLinePartitioner` and
        :func:`~repro.runtime.build_domain_set` instead.  The partition
        vector and domain payloads are identical to the historical ones
        (same line contraction, same seed handling, fig. 6b).
    """
    part = MetisLinePartitioner(
        ctx.npoints, ctx.edges, lines=ctx.lines, seed=seed
    ).partition(nparts)
    hierarchy = build_domain_hierarchy(
        [LevelSpec(
            nvert=ctx.npoints, edges=ctx.edges,
            payload=lambda h, p: _local_flow_context(ctx, h, p),
        )],
        [],
        part,
    )
    level = hierarchy.levels[0]
    return level.domains, level.part


def _single(comm, dom) -> tuple:
    pid = dom.halo.rank
    return pid, make_exchanger("plan", comm, plans={pid: dom.halo.plan})


def parallel_residual(comm, dom, q: np.ndarray, qinf,
                      viscous: bool = True) -> np.ndarray:
    """Complete residual on owned vertices (deprecated single-partition
    shim over :class:`NSU3DKernels`)."""
    pid, X = _single(comm, dom)
    kern = NSU3DKernels(qinf, viscous=viscous)
    return kern.defect(X, {pid: dom}, {pid: q})[pid]


def parallel_smooth(
    comm,
    dom,
    q: np.ndarray,
    qinf: np.ndarray,
    cfl: float = 10.0,
    nsteps: int = 1,
    viscous: bool = True,
) -> np.ndarray:
    """Preconditioned-multistage implicit smoothing (deprecated
    single-partition shim over :class:`NSU3DKernels`)."""
    pid, X = _single(comm, dom)
    kern = NSU3DKernels(qinf, viscous=viscous)
    return kern.smooth(X, {pid: dom}, {pid: q}, cfl=cfl, nsteps=nsteps)[pid]


def parallel_residual_norm(comm, dom, q, qinf,
                           viscous: bool = True) -> float:
    """Global volume-scaled L2 continuity-residual norm (allreduce)."""
    pid, X = _single(comm, dom)
    kern = NSU3DKernels(qinf, viscous=viscous)
    return kern.residual_norm(comm, X, {pid: dom}, {pid: q})


class ParallelNSU3D:
    """Config facade: the decomposed NSU3D solver under any backend.

    Execution is selected by a
    :class:`~repro.runtime.config.RuntimeConfig` (or the ``backend=``
    shorthand): ``sim``/``hybrid`` run on SimMPI worlds, ``process`` on
    a spawned worker pool — call :meth:`solve` for the config-driven
    path, or :meth:`run` with your own world for the historical SimMPI
    signature.  The historical constructor (fine context only — pure
    smoothing runs) keeps working; pass ``contexts``/``maps`` from a
    serial solver (or use :meth:`from_solver`) to run full distributed
    FAS cycles.  The bare ``overlap``/``charge_compute``/``sanitize``
    keywords are deprecated spellings of the config fields.
    """

    def __init__(self, ctx: FlowContext, qinf: np.ndarray, nparts: int,
                 seed: int = 0, viscous: bool = True, *,
                 turbulence: bool | None = None,
                 contexts: list | None = None, maps: list | None = None,
                 config: RuntimeConfig | None = None,
                 backend: str | None = None,
                 kernel_config: KernelConfig | None = None,
                 overlap: bool | None = None,
                 charge_compute: bool | None = None,
                 sanitize: bool | None = None):
        config = resolve_config(
            config, backend, where="ParallelNSU3D", overlap=overlap,
            charge_compute=charge_compute, sanitize=sanitize,
        )
        config = merge_kernel_config(config, kernel_config, "ParallelNSU3D")
        # the historical fine-level-only constructor runs plain
        # smoothing steps; a caller-supplied hierarchy runs full cycles
        # even when it has a single level (matching the serial solvers)
        smoothing_only = contexts is None
        contexts = list(contexts) if contexts is not None else [ctx]
        maps = list(maps) if maps is not None else []
        part = MetisLinePartitioner(
            contexts[0].npoints, contexts[0].edges,
            lines=contexts[0].lines, seed=seed,
        ).partition(nparts)
        specs = [
            LevelSpec(
                nvert=c.npoints, edges=c.edges,
                payload=lambda h, p, c=c: _local_flow_context(c, h, p),
            )
            for c in contexts
        ]
        self.hierarchy = build_domain_hierarchy(specs, maps, part)
        self.kernels = NSU3DKernels(
            qinf, viscous=viscous, kernel_config=config.kernels,
            turbulence=turbulence,
        )
        self.driver = DistributedSolveDriver(
            self.hierarchy, self.kernels, qinf, config=config,
            smoothing_only=smoothing_only,
        )
        self.config = self.driver.config
        self.domains = self.hierarchy.levels[0].domains
        self.part = part
        self.ctx = contexts[0]
        self.qinf = qinf
        self.nparts = nparts
        self.viscous = viscous
        self.turbulence = self.kernels.turbulence

    @classmethod
    def from_solver(cls, solver, nparts: int, *, seed: int = 0,
                    config: RuntimeConfig | None = None,
                    backend: str | None = None,
                    kernel_config: KernelConfig | None = None,
                    overlap: bool | None = None,
                    charge_compute: bool | None = None,
                    sanitize: bool | None = None) -> "ParallelNSU3D":
        """Decompose a serial :class:`NSU3DSolver`'s hierarchy.

        The solver's variable layout and physics flags carry over —
        turbulent (SA) solvers decompose exactly like laminar ones —
        and with no explicit engine selection the solver's own
        ``kernel_config`` does too, so a decomposed solve runs the same
        kernels on the same system as the serial one it came from.
        """
        config = resolve_config(
            config, backend, where="ParallelNSU3D.from_solver",
            overlap=overlap, charge_compute=charge_compute,
            sanitize=sanitize,
        )
        if kernel_config is None and config.kernels is None:
            kernel_config = getattr(solver, "kernel_config", None)
        return cls(
            solver.contexts[0], solver.qinf, nparts, seed=seed,
            viscous=True, turbulence=solver.turbulence,
            contexts=solver.contexts, maps=solver.maps,
            config=config, kernel_config=kernel_config,
        )

    def run(self, world, ncycles: int, cfl: float = 10.0, *,
            cycle: str = "W", nu1: int = 1, nu2: int = 1,
            coarse_cfl: float | None = None):
        """Iterate on a caller-supplied SimMPI world; returns
        (global q, residual history)."""
        return self.driver.run(
            world, ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
            coarse_cfl=coarse_cfl,
        )

    def solve(self, ncycles: int, cfl: float = 10.0, *,
              cycle: str = "W", nu1: int = 1, nu2: int = 1,
              coarse_cfl: float | None = None):
        """Config-driven iterate (builds the backend's own world);
        returns (global q, residual history)."""
        return self.driver.solve(
            ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
            coarse_cfl=coarse_cfl,
        )

    def close(self) -> None:
        """Release backend resources (the process backend's workers)."""
        self.driver.close()

    def __enter__(self) -> "ParallelNSU3D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
