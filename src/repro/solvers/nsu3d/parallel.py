"""Domain-decomposed NSU3D over SimMPI (paper section III).

Mirrors the paper's parallel structure: METIS-style partitioning of the
(line-contracted) dual graph, ghost vertices at partition boundaries,
single-buffer-per-neighbor packed exchanges, residual accumulation to
owners (exchange-add) and ghost refresh (exchange-copy), and the
preconditioned-multistage point/line-implicit smoother with the implicit
operator's edge contributions likewise summed across ranks.

Because implicit lines are never split by the partitioner (fig. 6b), the
block-tridiagonal solves remain rank-local.  The driver supports the
5-variable laminar/inviscid system; the SA source terms need distributed
nodal gradients and are evaluated only by the serial solver (recorded in
DESIGN.md — the paper's parallel experiments measure communication
structure, which is identical for 5 or 6 unknowns; the performance model
charges 6-variable traffic).

Correctness contract (tested): per-rank results equal the serial solver
on the same mesh to floating-point-reassociation tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...comm.exchange import LocalHalo, build_halos
from ...comm.simmpi import SimMPI
from ...telemetry.spans import get_tracer, span as _span
from ...partition.graph import Graph, contract_lines, project_partition
from ...partition.metis import partition_graph
from ..gas import apply_positivity_floors
from .context import FlowContext
from .jacobians import assemble_diagonal, edge_spectral_radius
from .linesolve import (
    STAGE_COEFFS,
    batch_lines_by_length,
    block_thomas,
    limit_correction,
    line_offdiag_blocks,
)
from .residual import apply_wall_bc, residual


@dataclass
class LocalDomain:
    """One rank's share of the flow problem."""

    halo: LocalHalo
    ctx: FlowContext  # local numbering; boundary lists owned-only
    nowned: int

    @property
    def nlocal(self) -> int:
        return self.ctx.npoints


def partition_domain(
    ctx: FlowContext, nparts: int, seed: int = 0
) -> tuple[list, np.ndarray]:
    """Split a (fine-level) context into per-rank :class:`LocalDomain`.

    The vertex graph is contracted along the implicit lines before
    partitioning, so no line is ever split (fig. 6b).
    """
    graph = Graph.from_edges(ctx.npoints, ctx.edges)
    if ctx.lines:
        cgraph, cluster = contract_lines(graph, ctx.lines)
        cpart = partition_graph(cgraph, nparts, seed=seed)
        part = project_partition(cluster, cpart)
    else:
        part = partition_graph(graph, nparts, seed=seed)

    halos = build_halos(ctx.npoints, ctx.edges, part)
    domains = []
    for h in halos:
        l2g = h.local_to_global()
        g2l = np.full(ctx.npoints, -1, dtype=np.int64)
        g2l[l2g] = np.arange(len(l2g))
        owned_mask = np.zeros(ctx.npoints, dtype=bool)
        owned_mask[h.owned_global] = True

        def filter_boundary(verts, normals):
            sel = owned_mask[verts]
            return g2l[verts[sel]], normals[sel]

        wall_v, wall_n = filter_boundary(ctx.wall_vert, ctx.wall_normal)
        far_v, far_n = filter_boundary(ctx.far_vert, ctx.far_normal)
        sym_v, sym_n = filter_boundary(ctx.sym_vert, ctx.sym_normal)
        local_lines = [
            g2l[line] for line in ctx.lines if part[line[0]] == h.rank
        ]
        local_ctx = FlowContext(
            points=ctx.points[l2g],
            edges=h.edges,
            face_vectors=ctx.face_vectors[h.edge_gids],
            volumes=ctx.volumes[l2g],
            dist=ctx.dist[l2g],
            mu_lam=ctx.mu_lam,
            wall_vert=wall_v,
            wall_normal=wall_n,
            far_vert=far_v,
            far_normal=far_n,
            sym_vert=sym_v,
            sym_normal=sym_n,
            lines=local_lines,
            dual=None,
        )
        domains.append(LocalDomain(halo=h, ctx=local_ctx, nowned=h.nowned))
    return domains, part


def parallel_residual(comm, dom: LocalDomain, q: np.ndarray, qinf,
                      viscous: bool = True) -> np.ndarray:
    """Complete residual on owned vertices (ghost rows zeroed after the
    exchange-add, as in the paper's figure-6 scheme)."""
    r = residual(dom.ctx, q, qinf, turbulence=False, viscous=viscous)
    dom.halo.plan.exchange_add(comm, r)
    r[dom.nowned:] = 0.0
    # remote edge contributions landed after residual()'s own masking;
    # re-impose the strong wall rows on the completed residual
    from .residual import mask_wall_rows

    return mask_wall_rows(dom.ctx, r)


def _exchanged_time_step(comm, dom: LocalDomain, q, cfl):
    """Local spectral-radius accumulation completed across ranks."""
    ctx = dom.ctx
    lam = edge_spectral_radius(q, ctx.edges, ctx.face_vectors)
    from .jacobians import viscous_edge_coefficient

    kv = viscous_edge_coefficient(ctx, q)
    acc = np.zeros((ctx.npoints, 1), dtype=np.float64)
    np.add.at(acc[:, 0], ctx.edges[:, 0], lam + 2 * kv)
    np.add.at(acc[:, 0], ctx.edges[:, 1], lam + 2 * kv)
    for verts, normals in (
        (ctx.far_vert, ctx.far_normal),
        (ctx.sym_vert, ctx.sym_normal),
        (ctx.wall_vert, ctx.wall_normal),
    ):
        if len(verts):
            lam_b = edge_spectral_radius(
                q[verts], np.column_stack([np.arange(len(verts))] * 2), normals
            )
            np.add.at(acc[:, 0], verts, lam_b)
    dom.halo.plan.exchange_add(comm, acc, tag=11)
    return cfl * ctx.volumes / np.maximum(acc[:, 0], 1e-300)


def _exchanged_diagonal(comm, dom: LocalDomain, q, dt):
    """Implicit diagonal blocks with edge contributions summed across
    ranks (each cross edge lives on exactly one rank)."""
    ctx = dom.ctx
    nvar = q.shape[1]
    # edge-only contributions: build with a huge dt and no boundaries by
    # subtracting the V/dt identity that assemble_diagonal always adds
    diag = assemble_diagonal(ctx, q, dt)
    eye = np.eye(nvar)
    vdt = (ctx.volumes / dt)[:, None, None] * eye[None, :, :]
    edge_part = diag - vdt
    # strong wall rows were overwritten; rebuild them after the exchange
    flat = edge_part.reshape(ctx.npoints, nvar * nvar)
    dom.halo.plan.exchange_add(comm, flat, tag=12)
    total = flat.reshape(ctx.npoints, nvar, nvar) + vdt
    w = ctx.wall_vert
    if len(w):
        for row in [1, 2, 3] + ([5] if nvar > 5 else []):
            total[w, row, :] = 0.0
            total[w, row, row] = 1.0
    return total


def parallel_smooth(
    comm,
    dom: LocalDomain,
    q: np.ndarray,
    qinf: np.ndarray,
    cfl: float = 10.0,
    nsteps: int = 1,
    viscous: bool = True,
) -> np.ndarray:
    """Preconditioned-multistage implicit smoothing, domain-decomposed."""
    q = apply_wall_bc(dom.ctx, q)
    dom.halo.plan.exchange_copy(comm, q, tag=13)
    for _ in range(nsteps):
        dt = _exchanged_time_step(comm, dom, q, cfl)
        diag = _exchanged_diagonal(comm, dom, q, dt)
        batches = batch_lines_by_length(dom.ctx.lines)
        blocks = {
            length: line_offdiag_blocks(dom.ctx, q, batch)
            for length, batch in batches.items()
        }
        on_line = np.zeros(dom.nlocal, dtype=bool)
        for batch in batches.values():
            on_line[batch.ravel()] = True

        q0 = q.copy()
        for alpha in STAGE_COEFFS:
            r = parallel_residual(comm, dom, q, qinf, viscous=viscous)
            dq = np.zeros_like(q)
            for length, batch in batches.items():
                lower, upper = blocks[length]
                dq[batch.reshape(-1)] = block_thomas(
                    lower, diag[batch], upper, r[batch]
                ).reshape(-1, q.shape[1])
            rest = ~on_line
            if rest.any():
                dq[rest] = np.linalg.solve(
                    diag[rest], r[rest][:, :, None]
                )[:, :, 0]
            cand = apply_wall_bc(
                dom.ctx, limit_correction(q0, -alpha * dq)
            )
            q = apply_positivity_floors(cand)
            dom.halo.plan.exchange_copy(comm, q, tag=14)
    return q


def parallel_residual_norm(comm, dom: LocalDomain, q, qinf,
                           viscous: bool = True) -> float:
    """Global volume-scaled L2 continuity-residual norm (allreduce)."""
    r = parallel_residual(comm, dom, q, qinf, viscous=viscous)
    own = slice(0, dom.nowned)
    local_sq = float(np.sum((r[own, 0] / dom.ctx.volumes[own]) ** 2))
    total = comm.allreduce(np.array([local_sq, float(dom.nowned)]))
    return float(np.sqrt(total[0] / total[1]))


class ParallelNSU3D:
    """Facade running the decomposed solver on a SimMPI world."""

    def __init__(self, ctx: FlowContext, qinf: np.ndarray, nparts: int,
                 seed: int = 0, viscous: bool = True):
        self.domains, self.part = partition_domain(ctx, nparts, seed=seed)
        self.ctx = ctx
        self.qinf = qinf
        self.nparts = nparts
        self.viscous = viscous

    def run(self, world: SimMPI, ncycles: int, cfl: float = 10.0):
        """Smooth ``ncycles`` steps; returns (global q, residual history)."""
        qinf = self.qinf
        domains = self.domains
        viscous = self.viscous

        def body(comm):
            dom = domains[comm.rank]
            q = np.tile(qinf, (dom.nlocal, 1))
            history = []
            # each rank thread pins its identity and virtual clock, so
            # spans (here and in comm.exchange) land on per-rank tracks
            with get_tracer().bind(rank=comm.rank,
                                   clock=lambda: comm.clock):
                for _ in range(ncycles):
                    with _span("nsu3d.parallel_cycle", cat="solver"):
                        q = parallel_smooth(
                            comm, dom, q, qinf, cfl=cfl, viscous=viscous
                        )
                        history.append(
                            parallel_residual_norm(
                                comm, dom, q, qinf, viscous=viscous
                            )
                        )
            return dom.halo.owned_global, q[: dom.nowned], history

        results = world.run(body)
        q_global = np.empty((self.ctx.npoints, len(qinf)), dtype=np.float64)
        for gids, q_owned, history in results:
            q_global[gids] = q_owned
        return q_global, results[0][2]
