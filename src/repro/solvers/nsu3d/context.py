"""Per-level solver context for the NSU3D-style RANS solver.

A :class:`FlowContext` packages everything the residual, Jacobian and
smoother routines need about one grid level: the edge/dual geometry (or
its agglomerated coarse equivalent), wall distances, boundary vertex
groups by condition kind, the laminar viscosity, and (on the fine level)
the implicit-line structures.

The same context type serves the fine grid (built from a
:class:`~repro.mesh.unstructured.dual.DualMesh`) and agglomerated coarse
levels (built by :mod:`repro.solvers.nsu3d.agglomerate`), which is what
lets one residual implementation run on every level of the multigrid
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...mesh.unstructured.dual import DualMesh
from .gradients import GradientSurface


@dataclass
class FlowContext:
    """Geometry and physics of one solver level."""

    points: np.ndarray  # (N, 3) vertex/agglomerate centroids
    edges: np.ndarray  # (E, 2)
    face_vectors: np.ndarray  # (E, 3), oriented edges[:,0] -> edges[:,1]
    volumes: np.ndarray  # (N,)
    dist: np.ndarray  # (N,) wall distance
    mu_lam: float
    # boundary vertex groups (aggregated outward normals)
    wall_vert: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    wall_normal: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.float64))
    far_vert: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    far_normal: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.float64))
    sym_vert: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    sym_normal: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.float64))
    lines: list = field(default_factory=list)
    # fine level keeps its dual (or a rank-local GradientSurface closure)
    # for Green-Gauss gradients
    dual: DualMesh | GradientSurface | None = None

    @property
    def npoints(self) -> int:
        return len(self.volumes)

    @property
    def nedges(self) -> int:
        return len(self.edges)

    def edge_distances(self) -> np.ndarray:
        d = self.points[self.edges[:, 1]] - self.points[self.edges[:, 0]]
        return np.maximum(np.linalg.norm(d, axis=1), 1e-300)


def context_from_dual(
    dual: DualMesh,
    mu_lam: float,
    lines: list | None = None,
    dist: np.ndarray | None = None,
) -> FlowContext:
    """Fine-level context from a median-dual mesh."""
    groups: dict = {"wall": [], "farfield": [], "symmetry": []}
    for kind in groups:
        patch_ids = [
            i for i, k in enumerate(dual.patch_kinds) if k == kind
        ]
        sel = np.isin(dual.bpatch, patch_ids)
        groups[kind] = (dual.bvert[sel], dual.bnormal[sel])

    if dist is None:
        from .distance import wall_distance

        dist = wall_distance(dual)

    return FlowContext(
        points=dual.points,
        edges=dual.edges,
        face_vectors=dual.face_vectors,
        volumes=dual.volumes,
        dist=dist,
        mu_lam=mu_lam,
        wall_vert=groups["wall"][0],
        wall_normal=groups["wall"][1],
        far_vert=groups["farfield"][0],
        far_normal=groups["farfield"][1],
        sym_vert=groups["symmetry"][0],
        sym_normal=groups["symmetry"][1],
        lines=list(lines) if lines else [],
        dual=dual,
    )
