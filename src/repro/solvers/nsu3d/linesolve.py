"""Point-implicit and line-implicit smoothers (paper section III, fig. 5).

The point-implicit smoother inverts one dense 6x6 block per grid point.
In boundary-layer regions the grid anisotropy couples points strongly
along wall-normal lines, and the point scheme stalls; NSU3D therefore
solves block-tridiagonal systems **along the implicit lines** with an LU
(Thomas) sweep, reverting to point-implicit off the lines.  "Because the
line solver is inherently scalar, the lines are sorted based on their
length, and grouped into sets of 64 lines of similar length, over which
vectorization may then take place" — our numpy implementation does
exactly that: lines of equal length are batched and the Thomas recursion
runs vectorized across the batch.
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ...telemetry.spans import traced
from ..gas import variable_layout
from .context import FlowContext
from .jacobians import assemble_diagonal, edge_offdiagonals, local_time_step
from .residual import apply_wall_bc, residual


def limit_correction(q, dq, max_change: float = 0.2, turb_ref=None):
    """Per-point scaling so density, total energy and the turbulence
    variables change boundedly per step — the standard guard against
    violent startup corrections from coarse levels.

    Which columns get limited comes from the solver's variable layout,
    not hard-coded slots, so extended state vectors (multi-equation
    turbulence models) limit the right rows.

    ``turb_ref`` supplies the field-maximum of each turbulence working
    variable (one entry per ``layout.turbulence`` column).  The serial
    path takes the max over the rows it was given; a distributed caller
    must pass the *global* maxima (an allreduce over owned rows) so every
    rank limits against the same reference and partitioning does not
    change the answer.
    """
    layout = variable_layout(q.shape[1])
    s = np.ones(len(q), dtype=np.float64)
    for var in layout.limited:
        allowed = max_change * np.abs(q[:, var]) + 1e-300
        s = np.minimum(s, allowed / np.maximum(np.abs(dq[:, var]), 1e-300))
    for j, var in enumerate(layout.turbulence):
        # allow bounded growth: a few times the current value, with a
        # floor tied to the largest working-variable level in the field
        # so near-zero points can still seed
        ref = (
            turb_ref[j] if turb_ref is not None
            else np.abs(q[:, var]).max()
        )
        seed = 0.05 * ref + 1e-300
        allowed = 2.0 * max_change * (np.abs(q[:, var]) + seed)
        s = np.minimum(s, allowed / np.maximum(np.abs(dq[:, var]), 1e-300))
    return q + np.minimum(s, 1.0)[:, None] * dq


def point_implicit_update(
    ctx: FlowContext,
    q: np.ndarray,
    rhs: np.ndarray,
    dt: np.ndarray,
) -> np.ndarray:
    """One block-Jacobi step: q - D^{-1} rhs (all points)."""
    diag = assemble_diagonal(ctx, q, dt)
    dq = get_engine().block_solve(diag, rhs)
    return q - dq


def batch_lines_by_length(lines: list) -> dict:
    """Group lines by vertex count: {length: (L, length) index array}."""
    groups: dict = {}
    for line in lines:
        groups.setdefault(len(line), []).append(line)
    return {
        length: np.array(batch, dtype=np.int64)
        for length, batch in groups.items()
    }


def _edge_lookup(ctx: FlowContext):
    """Map vertex pair -> edge index (sign tells orientation)."""
    n = ctx.npoints
    key = ctx.edges[:, 0] * n + ctx.edges[:, 1]
    order = np.argsort(key)
    return key[order], order, n


def line_offdiag_blocks(
    ctx: FlowContext,
    q: np.ndarray,
    batch: np.ndarray,
    offdiags: tuple[np.ndarray, np.ndarray] | None = None,
    lookup: tuple[np.ndarray, np.ndarray, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sub/super-diagonal blocks along each line of a batch.

    Returns (lower, upper) of shape (L, m-1, nvar, nvar): ``upper[l, i]``
    couples line vertex i to i+1 (= dR_i/dq_{i+1}), ``lower[l, i]``
    couples vertex i+1 to i.

    ``offdiags`` and ``lookup`` allow hoisting the per-edge Jacobians
    (``edge_offdiagonals``) and the edge-index sort out of a loop over
    batches — both depend only on ``(ctx, q)``, not the batch, and the
    gather below is a pure indexing operation on them.
    """
    sorted_keys, order, n = lookup if lookup is not None else _edge_lookup(ctx)
    va = batch[:, :-1]
    vb = batch[:, 1:]
    lo = np.minimum(va, vb)
    hi = np.maximum(va, vb)
    keys = lo * n + hi
    pos = np.searchsorted(sorted_keys, keys.ravel())
    if (sorted_keys[pos] != keys.ravel()).any():
        raise ValueError("line contains a non-edge vertex pair")
    eid = order[pos].reshape(keys.shape)

    off_ab, off_ba = (
        offdiags if offdiags is not None else edge_offdiagonals(ctx, q)
    )
    # off_ab couples edges[:,0] -> edges[:,1]; orient along the line
    forward = (ctx.edges[eid, 0] == va)
    upper = np.where(forward[..., None, None], off_ab[eid], off_ba[eid])
    lower = np.where(forward[..., None, None], off_ba[eid], off_ab[eid])
    return lower, upper


def block_thomas(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Batched block-tridiagonal LU solve for one line group.

    Shapes: diag (L, m, k, k); lower/upper (L, m-1, k, k); rhs (L, m, k).
    Vectorized across the L lines of the batch (the paper's groups-of-64
    strategy); the recursion runs over the m stations.  The recursion
    itself lives in :mod:`repro.kernels`; this wrapper dispatches one
    group through the active engine.
    """
    return get_engine().thomas([(lower, diag, upper, rhs)])[0]


def line_implicit_update(
    ctx: FlowContext,
    q: np.ndarray,
    rhs: np.ndarray,
    dt: np.ndarray,
) -> np.ndarray:
    """Line-implicit smoothing: block-tridiagonal solves along the
    implicit lines, point-implicit everywhere else."""
    engine = get_engine()
    diag = assemble_diagonal(ctx, q, dt)
    dq = np.zeros_like(q)

    batches = batch_lines_by_length(ctx.lines)
    offdiags = edge_offdiagonals(ctx, q)
    lookup = _edge_lookup(ctx)
    on_line = np.zeros(ctx.npoints, dtype=bool)
    systems = []
    for batch in batches.values():
        on_line[batch.ravel()] = True
        lower, upper = line_offdiag_blocks(
            ctx, q, batch, offdiags=offdiags, lookup=lookup
        )
        systems.append((lower, diag[batch], upper, rhs[batch]))
    # one engine call over every line-length group, so fused-slab
    # engines see all groups at once
    for batch, sol in zip(batches.values(), engine.thomas(systems)):
        dq[batch.reshape(-1)] = sol.reshape(-1, q.shape[1])

    rest = ~on_line
    if rest.any():
        dq[rest] = engine.block_solve(diag[rest], rhs[rest])
    return q - dq


#: Multistage coefficients for the preconditioned scheme.  A plain
#: (block-Jacobi) implicit update has unit amplification for pure
#: advection — it is the multistage wrapper that supplies the
#: high-frequency damping multigrid needs from its smoother.
STAGE_COEFFS = (0.6, 0.6, 1.0)


@traced("nsu3d.linesolve", cat="solver")
def smooth(
    ctx: FlowContext,
    q: np.ndarray,
    qinf: np.ndarray,
    forcing: np.ndarray | None = None,
    cfl: float = 10.0,
    nsteps: int = 1,
    use_lines: bool = True,
    order2: bool = False,
    turbulence: bool = True,
    viscous: bool = True,
    relax: float = 1.0,
) -> np.ndarray:
    """``nsteps`` preconditioned-multistage implicit smoothing steps.

    Each step freezes the implicit operator (point-diagonal or
    line-tridiagonal blocks) at the step's initial state and runs the
    multistage recursion

        q^(k) = q^(0) - alpha_k  P^{-1} (R(q^(k-1)) - f)

    — NSU3D's "local implicit solver at each grid point" driving a
    multistage scheme.  Per-point correction limiting and positivity
    floors guard the startup transient.
    """
    from ..gas import apply_positivity_floors

    q = apply_wall_bc(ctx, q)
    for _ in range(nsteps):
        dt = local_time_step(ctx, q, cfl)
        solve = _build_operator(ctx, q, dt, use_lines)
        q0 = q
        for alpha in STAGE_COEFFS:
            r = residual(
                ctx, q, qinf, order2=order2, turbulence=turbulence,
                viscous=viscous,
            )
            if forcing is not None:
                r = r - forcing
            dq = -alpha * relax * solve(r)
            if not np.isfinite(dq).all():
                raise FloatingPointError("implicit stage produced non-finite dq")
            cand = apply_wall_bc(ctx, limit_correction(q0, dq))
            for var in variable_layout(cand.shape[1]).turbulence:
                cand[:, var] = np.maximum(cand[:, var], 0.0)
            q = apply_positivity_floors(cand)
    return q


def _build_operator(ctx: FlowContext, q: np.ndarray, dt: np.ndarray,
                    use_lines: bool):
    """Freeze the implicit operator; return ``solve(rhs) -> dq``.

    The frozen blocks are prepared once through the active engine: the
    point-implicit diagonal is factored (engines may prefactor it, since
    the multistage recursion reapplies the same operator), the per-edge
    Jacobians and the edge lookup are hoisted out of the per-batch loop,
    and each stage's line solves go to the engine as one multi-group
    Thomas call so fused-slab engines batch across length groups.
    """
    engine = get_engine()
    diag = assemble_diagonal(ctx, q, dt)
    if not (use_lines and ctx.lines):
        factor = engine.block_factor(diag)

        def solve_point(rhs):
            return factor.solve(rhs)

        return solve_point

    batches = batch_lines_by_length(ctx.lines)
    offdiags = edge_offdiagonals(ctx, q)
    lookup = _edge_lookup(ctx)
    blocks = {
        length: line_offdiag_blocks(
            ctx, q, batch, offdiags=offdiags, lookup=lookup
        )
        for length, batch in batches.items()
    }
    line_diags = {length: diag[batch] for length, batch in batches.items()}
    on_line = np.zeros(ctx.npoints, dtype=bool)
    for batch in batches.values():
        on_line[batch.ravel()] = True
    rest = ~on_line
    rest_factor = engine.block_factor(diag[rest]) if rest.any() else None

    def solve_lines(rhs):
        dq = np.zeros_like(rhs)
        systems = [
            (blocks[length][0], line_diags[length], blocks[length][1],
             rhs[batch])
            for length, batch in batches.items()
        ]
        for batch, sol in zip(batches.values(), engine.thomas(systems)):
            dq[batch.reshape(-1)] = sol.reshape(-1, rhs.shape[1])
        if rest_factor is not None:
            dq[rest] = rest_factor.solve(rhs[rest])
        return dq

    return solve_lines
