"""Edge-based RANS residual (paper section III).

The discretization follows the paper's description of NSU3D: a
second-order control-volume scheme with unknowns at the grid points —
convective fluxes along edges through the median-dual face vectors (Roe
scheme, MUSCL reconstruction from Green-Gauss vertex gradients with a
van Albada limiter), nearest-neighbor viscous terms, and the one-equation
Spalart-Allmaras model solved coupled as the sixth unknown.

Substitution recorded in DESIGN.md: the full viscous stress tensor is
approximated by its edge-normal (thin-shear-layer-like) component —
standard practice for edge-based solvers and sufficient for boundary
layers on our wall-normal-stretched meshes.  The no-slip wall is imposed
strongly: wall-vertex momentum and turbulence rows are removed from the
system (:func:`apply_wall_bc` / the masking in :func:`residual`).

Residual convention: ``dq/dt = -R / V``; at steady state ``R = 0``.
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ...telemetry.spans import traced
from ..fluxes import roe_flux, rusanov_flux, wall_flux
from ..gas import GAMMA, GM1, conservative_to_primitive, variable_layout
from .context import FlowContext
from .gradients import green_gauss, vorticity_magnitude
from .turbulence import (
    cb2_term,
    diffusion_coefficient,
    eddy_viscosity,
    source_terms,
)

PRANDTL = 0.72
PRANDTL_T = 0.9


def apply_wall_bc(ctx: FlowContext, q: np.ndarray) -> np.ndarray:
    """Enforce no-slip adiabatic wall strongly: zero momentum and zero
    turbulence working variables at wall vertices."""
    layout = variable_layout(q.shape[1])
    q = q.copy()
    w = ctx.wall_vert
    if len(w):
        mom = list(layout.momentum)
        ke = 0.5 * np.sum(q[w][:, mom] ** 2, axis=1) / q[w, layout.density]
        # remove kinetic energy so pressure is unchanged
        q[w, layout.energy] -= ke
        for var in layout.momentum:
            q[w, var] = 0.0
        for var in layout.turbulence:
            q[w, var] = 0.0
    return q


def mask_wall_rows(ctx: FlowContext, r: np.ndarray) -> np.ndarray:
    """Zero the strongly-imposed rows (momentum + SA) at wall vertices."""
    layout = variable_layout(r.shape[1])
    w = ctx.wall_vert
    if len(w):
        for var in layout.momentum + layout.turbulence:
            r[w, var] = 0.0
    return r


@traced("nsu3d.residual", cat="solver")
def residual(
    ctx: FlowContext,
    q: np.ndarray,
    qinf: np.ndarray,
    order2: bool = False,
    turbulence: bool = True,
    viscous: bool = True,
    sa_sources: bool = True,
) -> np.ndarray:
    """Net-outflow residual (N, nvar).

    ``sa_sources=False`` skips the pointwise SA production/destruction
    block (edge and boundary terms only): the distributed path evaluates
    the sources separately at owned rows from halo-completed gradients
    (:func:`sa_source_residual`), after the edge sums have been
    exchange-added to their owners.
    """
    nvar = q.shape[1]
    layout = variable_layout(nvar)
    turbulence = turbulence and bool(layout.turbulence)
    engine = get_engine()
    a_idx = ctx.edges[:, 0]
    b_idx = ctx.edges[:, 1]
    r = np.zeros_like(q)

    prim = conservative_to_primitive(q)

    # -- convective fluxes along edges ---------------------------------------
    ql = q[a_idx]
    qr = q[b_idx]
    grad_prim = None
    if order2 and ctx.dual is not None:
        grad_prim = green_gauss(ctx.dual, prim)
        mid = 0.5 * (ctx.points[a_idx] + ctx.points[b_idx])
        dl = mid - ctx.points[a_idx]
        dr = mid - ctx.points[b_idx]
        pl = prim[a_idx] + _limited(
            np.einsum("ed,edk->ek", dl, grad_prim[a_idx]),
            0.5 * (prim[b_idx] - prim[a_idx]),
        )
        pr = prim[b_idx] + _limited(
            np.einsum("ed,edk->ek", dr, grad_prim[b_idx]),
            0.5 * (prim[a_idx] - prim[b_idx]),
        )
        ok = (pl[:, 0] > 0) & (pl[:, 4] > 0) & (pr[:, 0] > 0) & (pr[:, 4] > 0)
        from ..gas import primitive_to_conservative

        ql = np.where(ok[:, None], primitive_to_conservative(pl), ql)
        qr = np.where(ok[:, None], primitive_to_conservative(pr), qr)

    f = roe_flux(ql, qr, ctx.face_vectors)
    engine.scatter_add(r, a_idx, f)
    engine.scatter_add(r, b_idx, -f)

    # -- boundary convective fluxes -------------------------------------------
    if len(ctx.far_vert):
        ghost = farfield_ghost(q[ctx.far_vert], qinf, ctx.far_normal)
        ff = rusanov_flux(q[ctx.far_vert], ghost, ctx.far_normal)
        engine.scatter_add(r, ctx.far_vert, ff)
    if len(ctx.sym_vert):
        fs = wall_flux(q[ctx.sym_vert], ctx.sym_normal)
        engine.scatter_add(r, ctx.sym_vert, fs)
    if len(ctx.wall_vert):
        # u = 0 there: only the pressure flux survives (momentum rows are
        # masked anyway; continuity/energy see zero convective flux)
        fw = wall_flux(q[ctx.wall_vert], ctx.wall_normal)
        engine.scatter_add(r, ctx.wall_vert, fw)

    # -- viscous terms (edge-normal approximation) ------------------------------
    if viscous and ctx.mu_lam > 0.0:
        rho = prim[:, 0]
        vel = prim[:, 1:4]
        sa_var = layout.turbulence[0] if layout.turbulence else None
        nu_hat = prim[:, sa_var] if sa_var is not None else None
        mu_t = (
            eddy_viscosity(rho, nu_hat, ctx.mu_lam)
            if turbulence
            else np.zeros_like(rho)
        )
        area = np.linalg.norm(ctx.face_vectors, axis=1)
        dist = ctx.edge_distances()
        mu_f = ctx.mu_lam + 0.5 * (mu_t[a_idx] + mu_t[b_idx])
        coef = mu_f * area / dist  # (E,)

        dvel = vel[b_idx] - vel[a_idx]
        fv = np.zeros((ctx.nedges, nvar), dtype=np.float64)
        fv[:, 1:4] = -coef[:, None] * dvel
        # energy: shear work + heat conduction (edge-normal forms)
        vbar = 0.5 * (vel[a_idx] + vel[b_idx])
        t = prim[:, 4] / rho  # T = p / (rho R) with gas constant R = 1
        # conductivity = cp (mu/Pr + mu_t/Pr_t), cp = gamma R / (gamma - 1)
        kappa_f = (GAMMA / GM1) * (
            ctx.mu_lam / PRANDTL + 0.5 * (mu_t[a_idx] + mu_t[b_idx]) / PRANDTL_T
        )
        fv[:, 4] = -coef * np.einsum("ed,ed->e", vbar, dvel) - kappa_f * area / dist * (
            t[b_idx] - t[a_idx]
        )
        if turbulence:
            dcoef = (
                diffusion_coefficient(
                    rho[a_idx], rho[b_idx], nu_hat[a_idx], nu_hat[b_idx],
                    ctx.mu_lam,
                )
                * area / dist
            )
            fv[:, sa_var] = -dcoef * (nu_hat[b_idx] - nu_hat[a_idx])
        engine.scatter_add(r, a_idx, fv)
        engine.scatter_add(r, b_idx, -fv)

        # -- SA sources --------------------------------------------------------
        if turbulence and sa_sources:
            if ctx.dual is not None:
                grads = green_gauss(ctx.dual, np.column_stack([vel, nu_hat]))
                vort = vorticity_magnitude(grads[:, :, :3])
                grad_nu = grads[:, :, 3]
            else:
                # coarse levels: estimate vorticity from edge differences
                vort = _edge_vorticity_estimate(ctx, vel)
                grad_nu = np.zeros((ctx.npoints, 3), dtype=np.float64)
            r[:, sa_var] += sa_source_residual(
                rho, nu_hat, vort, grad_nu, ctx.dist, ctx.mu_lam,
                ctx.volumes,
            )

    return mask_wall_rows(ctx, r)


def sa_source_residual(
    rho: np.ndarray,
    nu_hat: np.ndarray,
    vort: np.ndarray,
    grad_nu: np.ndarray,
    dist: np.ndarray,
    mu_lam: float,
    volumes: np.ndarray,
) -> np.ndarray:
    """Pointwise SA source contribution to the working-variable row:
    ``(destruction - production) * V`` with the cb2 gradient-squared
    term folded into production.  Shared by the serial residual and the
    distributed path (which feeds halo-completed ``vort``/``grad_nu``
    and adds the result at owned rows only)."""
    prod, dest = source_terms(rho, nu_hat, vort, dist, mu_lam)
    prod = prod + cb2_term(grad_nu, rho)
    return (dest - prod) * volumes


def farfield_ghost(
    q: np.ndarray, qinf: np.ndarray, normal: np.ndarray
) -> np.ndarray:
    """Subsonic characteristic far-field ghost state.

    Outflow (u.n > 0): interior state with the freestream static
    pressure imposed — the standard pressure-outflow that lets boundary
    layers and wakes exit cleanly.  Inflow: freestream state with the
    interior pressure (one outgoing characteristic).  Supersonic faces
    reduce to full extrapolation / full freestream automatically through
    the upwind flux.
    """
    from ..gas import primitive_to_conservative

    nvert = len(q)
    prim_i = conservative_to_primitive(q)
    prim_f = conservative_to_primitive(
        np.broadcast_to(qinf, (nvert, q.shape[1])).copy()
    )
    un = np.einsum("nd,nd->n", prim_i[:, 1:4], normal)
    ghost = np.where(un[:, None] > 0, prim_i, prim_f)
    ghost = ghost.copy()
    ghost[:, 4] = np.where(un > 0, prim_f[:, 4], prim_i[:, 4])
    return primitive_to_conservative(ghost)


def _limited(dq: np.ndarray, ref: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    num = (ref * ref + eps) * dq + (dq * dq + eps) * ref
    den = dq * dq + ref * ref + 2 * eps
    return np.where(dq * ref > 0, num / den, 0.0)


def _edge_vorticity_estimate(ctx: FlowContext, vel: np.ndarray) -> np.ndarray:
    """Crude vorticity magnitude for agglomerated levels: average
    |dvel| / |dx| over incident edges."""
    a = ctx.edges[:, 0]
    b = ctx.edges[:, 1]
    rate = np.linalg.norm(vel[b] - vel[a], axis=1) / ctx.edge_distances()
    engine = get_engine()
    acc = np.zeros(ctx.npoints, dtype=np.float64)
    cnt = np.zeros(ctx.npoints, dtype=np.float64)
    engine.scatter_add(acc, a, rate)
    engine.scatter_add(acc, b, rate)
    engine.scatter_add(cnt, a, 1.0)
    engine.scatter_add(cnt, b, 1.0)
    return acc / np.maximum(cnt, 1.0)


def residual_norm(ctx: FlowContext, q, qinf, **kw) -> float:
    """Volume-scaled L2 norm of the continuity residual — the quantity
    plotted in the paper's figure 14(a)."""
    r = residual(ctx, q, qinf, **kw)
    return float(np.sqrt(np.mean((r[:, 0] / ctx.volumes) ** 2)))
