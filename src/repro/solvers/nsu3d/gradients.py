"""Green-Gauss gradients on median-dual control volumes.

Vertex gradients drive three things in the NSU3D-style discretization:
second-order MUSCL reconstruction of the convective fluxes, the vorticity
magnitude in the turbulence model's production term, and the viscous
work terms.  The Green-Gauss formula over the dual CV is exact for
linear fields on a closed dual (which :mod:`repro.mesh.unstructured.dual`
guarantees to machine precision).
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ...mesh.unstructured.dual import DualMesh


def green_gauss(dual: DualMesh, fields: np.ndarray) -> np.ndarray:
    """Gradients of ``fields`` (N, k) -> (N, 3, k).

    Interior dual faces use the edge-midpoint average; boundary faces use
    the boundary vertex value itself (first-order closure).
    """
    fields = np.asarray(fields, dtype=np.float64)
    if fields.ndim == 1:
        fields = fields[:, None]
    n, k = fields.shape
    grad = np.zeros((n, 3, k), dtype=np.float64)
    a = dual.edges[:, 0]
    b = dual.edges[:, 1]
    mid = 0.5 * (fields[a] + fields[b])  # (E, k)
    engine = get_engine()
    contrib = dual.face_vectors[:, :, None] * mid[:, None, :]
    engine.scatter_add(grad, a, contrib)
    engine.scatter_add(grad, b, -contrib)
    bcontrib = dual.bnormal[:, :, None] * fields[dual.bvert][:, None, :]
    engine.scatter_add(grad, dual.bvert, bcontrib)
    grad /= dual.volumes[:, None, None]
    return grad


def vorticity_magnitude(grad_vel: np.ndarray) -> np.ndarray:
    """|curl u| from velocity gradients ``(N, 3, 3)`` with
    ``grad_vel[:, i, j] = d u_j / d x_i``."""
    wx = grad_vel[:, 1, 2] - grad_vel[:, 2, 1]
    wy = grad_vel[:, 2, 0] - grad_vel[:, 0, 2]
    wz = grad_vel[:, 0, 1] - grad_vel[:, 1, 0]
    return np.sqrt(wx**2 + wy**2 + wz**2)
