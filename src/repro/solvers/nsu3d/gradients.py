"""Green-Gauss gradients on median-dual control volumes.

Vertex gradients drive three things in the NSU3D-style discretization:
second-order MUSCL reconstruction of the convective fluxes, the vorticity
magnitude in the turbulence model's production term, and the viscous
work terms.  The Green-Gauss formula over the dual CV is exact for
linear fields on a closed dual (which :mod:`repro.mesh.unstructured.dual`
guarantees to machine precision).

The surface integral and the volume division are exposed separately
(:func:`green_gauss_sums` / :func:`green_gauss`): the distributed path
accumulates each rank's partial surface sums, completes them across
ranks with an exchange-add (every dual face lives on exactly one rank),
and only then divides by the control volumes — the same
partial-sum/complete/finalize pattern as the residual.  A rank-local
closure carries just the geometry the surface integral needs, as a
:class:`GradientSurface`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kernels import get_engine
from ...mesh.unstructured.dual import DualMesh


@dataclass
class GradientSurface:
    """The minimal closed-surface geometry Green-Gauss integrates over.

    A duck-typed subset of :class:`~repro.mesh.unstructured.dual.
    DualMesh`: interior dual faces as edges with oriented face vectors,
    boundary faces as per-vertex outward normals, and the control
    volumes.  The distributed NSU3D path builds one per rank (local
    edge set, owned-only boundary closure) so the serial gradient
    kernels run unchanged on rank-local geometry.
    """

    edges: np.ndarray  # (E, 2)
    face_vectors: np.ndarray  # (E, 3), oriented edges[:,0] -> edges[:,1]
    volumes: np.ndarray  # (N,)
    bvert: np.ndarray  # (B,) boundary-face vertex
    bnormal: np.ndarray  # (B, 3) outward boundary-face normal


def green_gauss_sums(
    dual: DualMesh | GradientSurface, fields: np.ndarray
) -> np.ndarray:
    """Undivided Green-Gauss surface sums of ``fields`` (N, k) -> (N, 3, k).

    The closed-surface integral only — divide by ``dual.volumes`` to get
    gradients.  Interior dual faces use the edge-midpoint average;
    boundary faces use the boundary vertex value itself (first-order
    closure).
    """
    fields = np.asarray(fields, dtype=np.float64)
    if fields.ndim == 1:
        fields = fields[:, None]
    n, k = len(dual.volumes), fields.shape[1]
    grad = np.zeros((n, 3, k), dtype=np.float64)
    a = dual.edges[:, 0]
    b = dual.edges[:, 1]
    mid = 0.5 * (fields[a] + fields[b])  # (E, k)
    engine = get_engine()
    contrib = dual.face_vectors[:, :, None] * mid[:, None, :]
    engine.scatter_add(grad, a, contrib)
    engine.scatter_add(grad, b, -contrib)
    bcontrib = dual.bnormal[:, :, None] * fields[dual.bvert][:, None, :]
    engine.scatter_add(grad, dual.bvert, bcontrib)
    return grad


def green_gauss(
    dual: DualMesh | GradientSurface, fields: np.ndarray
) -> np.ndarray:
    """Gradients of ``fields`` (N, k) -> (N, 3, k)."""
    grad = green_gauss_sums(dual, fields)
    grad /= dual.volumes[:, None, None]
    return grad


def vorticity_magnitude(grad_vel: np.ndarray) -> np.ndarray:
    """|curl u| from velocity gradients ``(N, 3, 3)`` with
    ``grad_vel[:, i, j] = d u_j / d x_i``."""
    wx = grad_vel[:, 1, 2] - grad_vel[:, 2, 1]
    wy = grad_vel[:, 2, 0] - grad_vel[:, 0, 2]
    wz = grad_vel[:, 0, 1] - grad_vel[:, 1, 0]
    return np.sqrt(wx**2 + wy**2 + wz**2)
