"""Wall-distance computation for the turbulence model.

The Spalart-Allmaras model's destruction term scales with the inverse
square of the distance to the nearest no-slip wall.  Distances are
computed from the dual mesh's wall-patch vertices with a KD-tree — exact
for our meshes, whose wall spacing (not wall curvature) controls the
near-wall values the model is sensitive to.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from ...mesh.unstructured.dual import DualMesh


def wall_distance(dual: DualMesh, floor: float = 1e-12) -> np.ndarray:
    """Distance of every vertex to the nearest wall vertex.

    Wall vertices themselves get ``floor`` (the SA destruction term
    divides by d^2; wall values of the working variable are pinned to
    zero anyway).
    """
    wall = dual.wall_vertices()
    if len(wall) == 0:
        raise ValueError("mesh has no wall patch — cannot compute distance")
    tree = cKDTree(dual.points[wall])
    d, _ = tree.query(dual.points, k=1)
    return np.maximum(d, floor)
