"""NSU3D-style unstructured RANS solver (paper section III)."""

from .agglomerate import agglomerate, build_hierarchy, coarsen_context
from .context import FlowContext, context_from_dual
from .distance import wall_distance
from .gradients import green_gauss, vorticity_magnitude
from .jacobians import (
    assemble_diagonal,
    edge_offdiagonals,
    euler_jacobian,
    local_time_step,
)
from .linesolve import (
    batch_lines_by_length,
    block_thomas,
    line_implicit_update,
    point_implicit_update,
    smooth,
)
from .multigrid import fas_cycle, restrict_residual, restrict_solution
from .residual import apply_wall_bc, mask_wall_rows, residual, residual_norm
from .parallel import (
    LocalDomain,
    ParallelNSU3D,
    parallel_residual,
    parallel_residual_norm,
    parallel_smooth,
    partition_domain,
)
from .solver import NSU3DHistory, NSU3DSolver
from .turbulence import eddy_viscosity, source_terms

__all__ = [
    "ParallelNSU3D",
    "partition_domain",
    "parallel_residual",
    "parallel_smooth",
    "parallel_residual_norm",
    "LocalDomain",
    "NSU3DSolver",
    "NSU3DHistory",
    "FlowContext",
    "context_from_dual",
    "wall_distance",
    "green_gauss",
    "vorticity_magnitude",
    "residual",
    "residual_norm",
    "apply_wall_bc",
    "mask_wall_rows",
    "euler_jacobian",
    "assemble_diagonal",
    "edge_offdiagonals",
    "local_time_step",
    "smooth",
    "point_implicit_update",
    "line_implicit_update",
    "block_thomas",
    "batch_lines_by_length",
    "agglomerate",
    "coarsen_context",
    "build_hierarchy",
    "fas_cycle",
    "restrict_solution",
    "restrict_residual",
    "eddy_viscosity",
    "source_terms",
]
