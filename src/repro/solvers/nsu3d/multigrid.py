"""Serial FAS adapter for the RANS solver (fig. 4).

The cycle itself — V/W recursion, FAS forcing, the coarse-CFL policy,
per-level telemetry spans — lives in :mod:`repro.runtime.multigrid`;
this module supplies the NSU3D-specific :class:`LevelOps`: the
line-implicit smoother, the (optionally turbulent/viscous) residual,
volume-weighted agglomeration transfers with strong wall-row handling,
and the limited/floored correction.

"The multigrid W-cycle has been found to produce superior convergence
rates and to be more robust, and is thus used exclusively in the NSU3D
calculations."  Within a W-cycle the coarsest of ``n`` levels is visited
``2^(n-1)`` times per fine-grid visit — the communication amplification
at the heart of the paper's InfiniBand results (figs. 16-19).
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ...runtime.multigrid import fas_cycle as _generic_fas_cycle
from ..gas import apply_positivity_floors
from .linesolve import limit_correction, smooth
from .residual import apply_wall_bc, mask_wall_rows, residual

#: Coarse levels tolerate the fine CFL (the historical ``coarse_cfl or
#: cfl`` behavior) — see the policy in :mod:`repro.runtime.multigrid`.
COARSE_CFL_FRACTION = 1.0


def restrict_solution(q, cluster, vol_f, vol_c):
    out = np.zeros((len(vol_c), q.shape[1]), dtype=np.float64)
    get_engine().scatter_add(out, cluster, q * vol_f[:, None])
    return out / vol_c[:, None]


def restrict_residual(r, cluster, ncoarse):
    out = np.zeros((ncoarse, r.shape[1]), dtype=np.float64)
    get_engine().scatter_add(out, cluster, r)
    return out


class _SerialNSU3DOps:
    """Serial :class:`~repro.runtime.multigrid.LevelOps` over the
    agglomerated context hierarchy."""

    name = "nsu3d"
    coarse_cfl_fraction = COARSE_CFL_FRACTION

    def __init__(self, contexts, maps, qinf, order2, turbulence, viscous):
        self.contexts = contexts
        self.maps = maps
        self.qinf = qinf
        self.order2 = order2
        self.turbulence = turbulence
        self.viscous = viscous
        self.nlevels = len(contexts)

    def _order2(self, level: int) -> bool:
        return self.order2 and level == 0  # coarse levels run first order

    def clone(self, q):
        return q.copy()

    def smooth(self, level, q, forcing, cfl, nsteps):
        return smooth(
            self.contexts[level], q, self.qinf, forcing=forcing, cfl=cfl,
            nsteps=nsteps, order2=self._order2(level),
            turbulence=self.turbulence, viscous=self.viscous,
        )

    def defect(self, level, q, forcing):
        r = residual(
            self.contexts[level], q, self.qinf, order2=self._order2(level),
            turbulence=self.turbulence, viscous=self.viscous,
        )
        if forcing is not None:
            r = r - forcing
        return r

    def restrict_state(self, level, q):
        ctx = self.contexts[level]
        coarse = self.contexts[level + 1]
        # the restricted base state must satisfy the coarse level's own
        # strong wall condition, or the correction q_c - q_c0 acquires a
        # spurious momentum component at every wall agglomerate
        return apply_wall_bc(
            coarse,
            restrict_solution(q, self.maps[level], ctx.volumes,
                              coarse.volumes),
        )

    def coarse_forcing(self, level, q_c0, defect):
        coarse = self.contexts[level + 1]
        return mask_wall_rows(
            coarse,
            self.defect(level + 1, q_c0, None)
            - restrict_residual(defect, self.maps[level], coarse.npoints),
        )

    def apply_correction(self, level, q, q_c, q_c0):
        dq = (q_c - q_c0)[self.maps[level]]
        return apply_positivity_floors(
            apply_wall_bc(self.contexts[level], limit_correction(q, dq))
        )


def fas_cycle(
    contexts: list,
    maps: list,
    q: np.ndarray,
    qinf: np.ndarray,
    l: int = 0,
    forcing: np.ndarray | None = None,
    cycle: str = "W",
    nu1: int = 1,
    nu2: int = 1,
    cfl: float = 10.0,
    coarse_cfl: float | None = None,
    order2: bool = False,
    turbulence: bool = True,
    viscous: bool = True,
) -> np.ndarray:
    """One FAS cycle from level ``l`` down; returns the updated state."""
    ops = _SerialNSU3DOps(contexts, maps, qinf, order2, turbulence, viscous)
    return _generic_fas_cycle(
        ops, q, level=l, forcing=forcing, cycle=cycle, nu1=nu1, nu2=nu2,
        cfl=cfl, coarse_cfl=coarse_cfl,
    )
