"""FAS agglomeration multigrid cycles for the RANS solver (fig. 4).

V- and W-cycles over the agglomerated hierarchy; "the multigrid W-cycle
has been found to produce superior convergence rates and to be more
robust, and is thus used exclusively in the NSU3D calculations."  Within
a W-cycle the coarsest of ``n`` levels is visited ``2^(n-1)`` times per
fine-grid visit — the communication amplification at the heart of the
paper's InfiniBand results (figs. 16-19).

Transfers: solution restriction is volume-weighted averaging over
agglomerates, residual restriction a plain sum, prolongation injection —
the standard agglomeration-multigrid set.
"""

from __future__ import annotations

import numpy as np

from ...telemetry.spans import span as _span
from ..gas import apply_positivity_floors
from .linesolve import limit_correction, smooth
from .residual import apply_wall_bc, residual


def restrict_solution(q, cluster, vol_f, vol_c):
    out = np.zeros((len(vol_c), q.shape[1]), dtype=np.float64)
    np.add.at(out, cluster, q * vol_f[:, None])
    return out / vol_c[:, None]


def restrict_residual(r, cluster, ncoarse):
    out = np.zeros((ncoarse, r.shape[1]), dtype=np.float64)
    np.add.at(out, cluster, r)
    return out


def fas_cycle(
    contexts: list,
    maps: list,
    q: np.ndarray,
    qinf: np.ndarray,
    l: int = 0,
    forcing: np.ndarray | None = None,
    cycle: str = "W",
    nu1: int = 1,
    nu2: int = 1,
    cfl: float = 10.0,
    coarse_cfl: float | None = None,
    order2: bool = False,
    turbulence: bool = True,
    viscous: bool = True,
) -> np.ndarray:
    """One FAS cycle from level ``l`` down; returns the updated state."""
    if cycle not in ("V", "W"):
        raise ValueError("cycle must be 'V' or 'W'")
    with _span("nsu3d.mg_level", cat="solver", level=l):
        return _fas_level(
            contexts, maps, q, qinf, l=l, forcing=forcing, cycle=cycle,
            nu1=nu1, nu2=nu2, cfl=cfl, coarse_cfl=coarse_cfl, order2=order2,
            turbulence=turbulence, viscous=viscous,
        )


def _fas_level(
    contexts, maps, q, qinf, l, forcing, cycle, nu1, nu2, cfl,
    coarse_cfl, order2, turbulence, viscous,
) -> np.ndarray:
    ctx = contexts[l]
    this_cfl = cfl if l == 0 else (coarse_cfl or cfl)
    use_order2 = order2 and l == 0

    q = smooth(
        ctx, q, qinf, forcing=forcing, cfl=this_cfl, nsteps=nu1,
        order2=use_order2, turbulence=turbulence, viscous=viscous,
    )

    if l + 1 < len(contexts):
        coarse = contexts[l + 1]
        cluster = maps[l]
        # the restricted base state must satisfy the coarse level's own
        # strong wall condition, or the correction q_c - q_c0 acquires a
        # spurious momentum component at every wall agglomerate
        q_c0 = apply_wall_bc(
            coarse, restrict_solution(q, cluster, ctx.volumes, coarse.volumes)
        )
        r_f = residual(
            ctx, q, qinf, order2=use_order2, turbulence=turbulence,
            viscous=viscous,
        )
        if forcing is not None:
            r_f = r_f - forcing
        from .residual import mask_wall_rows

        f_c = mask_wall_rows(
            coarse,
            residual(coarse, q_c0, qinf, turbulence=turbulence,
                     viscous=viscous)
            - restrict_residual(r_f, cluster, coarse.npoints),
        )

        q_c = q_c0.copy()
        visits = 2 if (cycle == "W" and l + 2 < len(contexts)) else 1
        for _ in range(visits):
            q_c = fas_cycle(
                contexts, maps, q_c, qinf, l=l + 1, forcing=f_c,
                cycle=cycle, nu1=nu1, nu2=nu2, cfl=cfl,
                coarse_cfl=coarse_cfl, order2=order2,
                turbulence=turbulence, viscous=viscous,
            )
        dq = (q_c - q_c0)[cluster]
        q = apply_positivity_floors(
            apply_wall_bc(ctx, limit_correction(q, dq))
        )

    return smooth(
        ctx, q, qinf, forcing=forcing, cfl=this_cfl, nsteps=nu2,
        order2=use_order2, turbulence=turbulence, viscous=viscous,
    )
