"""The unified solver surface: one case in, one result out.

The paper runs the same submission pattern through two very different
solvers — Cart3D sweeps the database, NSU3D anchors it — and the job
control scripts of section IV only care that a *case* (a point in the
configuration x wind space) turns into forces, a convergence history and
hardware counters.  This module pins that contract down:

* :class:`CaseSpec` — an immutable, content-keyed description of one CFD
  case (config-space parameters, wind-space parameters, solver settings).
  Two specs with the same content share the same :attr:`CaseSpec.key`,
  which is what the fill runtime's cache/dedup layer keys on.
* :class:`CaseResult` — the solver-agnostic outcome: force/moment
  coefficients, residual history, convergence flag, counted FLOPs.
  ``to_record()`` converts to the :class:`~repro.database.store.CaseRecord`
  the aero-database stores.
* :class:`SolverProtocol` — the structural type both
  :class:`~repro.solvers.cart3d.Cart3DSolver` and
  :class:`~repro.solvers.nsu3d.NSU3DSolver` satisfy:
  ``solve() -> history`` plus ``forces()``, ``residual_norm()``,
  ``history``, ``counters``, ``size`` and ``ndof``.
* :class:`ConvergenceHistory` — the shared residual/force trace (both
  solvers used to carry private copies; ``NSU3DHistory`` remains as a
  deprecated alias).

The module deliberately imports nothing from ``repro.database`` at the
top level so the solver and database packages stay acyclic.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np


def deprecated_accessor(old: str, new: str) -> None:
    """Emit the house DeprecationWarning for a superseded accessor."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class ConvergenceHistory:
    """Residual and force traces over multigrid cycles (both solvers)."""

    residuals: list = field(default_factory=list)
    forces: list = field(default_factory=list)

    def orders_converged(self) -> float:
        if len(self.residuals) < 2 or self.residuals[0] <= 0:
            return 0.0
        floor = max(self.residuals[-1], 1e-300)
        return float(np.log10(self.residuals[0] / floor))

    def cycles_to(self, orders: float) -> int | None:
        """First cycle index at which the residual dropped ``orders``
        decades below its initial value (None if never)."""
        if not self.residuals:
            return None
        target = self.residuals[0] * 10.0 ** (-orders)
        for i, r in enumerate(self.residuals):
            if r <= target:
                return i
        return None


def _as_items(values) -> tuple:
    """Normalize a parameter mapping to sorted ``(name, value)`` pairs."""
    if isinstance(values, Mapping):
        items = values.items()
    else:
        items = tuple(values)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class CaseSpec:
    """One CFD case: what the unified submission API accepts.

    ``config`` holds the configuration-space parameters (deflections —
    they select the geometry instance and hence the mesh), ``wind`` the
    wind-space parameters (Mach, alpha, beta), and ``settings`` any
    solver knobs that change the answer (mesh levels, cycle budget).
    All three accept dicts and are canonicalized to sorted tuples, so
    specs are hashable and insertion order never changes identity.
    """

    config: tuple = ()
    wind: tuple = ()
    solver: str = "cart3d"
    settings: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "config", _as_items(self.config))
        object.__setattr__(self, "wind", _as_items(self.wind))
        object.__setattr__(self, "settings", _as_items(self.settings))

    @property
    def config_params(self) -> dict:
        return dict(self.config)

    @property
    def wind_params(self) -> dict:
        return dict(self.wind)

    @property
    def params(self) -> dict:
        """Merged config + wind parameters — the database key the paper
        stores records under (solver settings are not part of it)."""
        merged = dict(self.config)
        merged.update(self.wind)
        return merged

    @property
    def key(self) -> str:
        """Content key: identical cases — however constructed — collide
        here, which is what makes re-submission a cache hit."""
        payload = json.dumps(
            [self.solver, self.config, self.wind, self.settings],
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def geometry_key(self) -> str:
        """Key of the geometry instance (config-space only): every case
        sharing it reuses one surface preparation + mesh, the paper's
        amortization."""
        payload = json.dumps([self.solver, self.config], default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @staticmethod
    def from_flow_job(job, solver: str = "cart3d", **settings) -> "CaseSpec":
        """Build a spec from a :class:`~repro.database.jobs.FlowJob`."""
        return CaseSpec(
            config=job.config_params,
            wind=job.wind_params,
            solver=solver,
            settings=settings,
        )


@dataclass(frozen=True)
class CaseResult:
    """Solver-agnostic outcome of one case: the database payload."""

    spec: CaseSpec
    coefficients: dict
    residual_history: tuple = ()
    converged: bool = True
    flops: float = 0.0
    degraded: bool = False  # produced by a fallback-fidelity re-run

    @property
    def cycles(self) -> int:
        return len(self.residual_history)

    def orders_converged(self) -> float:
        h = self.residual_history
        if len(h) < 2 or h[0] <= 0:
            return 0.0
        return float(np.log10(h[0] / max(h[-1], 1e-300)))

    def to_record(self):
        """Convert to the :class:`~repro.database.store.CaseRecord` the
        aero-database stores (import deferred to stay acyclic)."""
        from ..database.store import CaseRecord

        return CaseRecord(
            params=self.spec.params,
            coefficients=dict(self.coefficients),
            residual_history=list(self.residual_history),
            converged=self.converged,
            degraded=self.degraded,
        )

    def to_json(self) -> dict:
        """JSON-able form for the persistent result store."""
        return {
            "config": dict(self.spec.config),
            "wind": dict(self.spec.wind),
            "solver": self.spec.solver,
            "settings": dict(self.spec.settings),
            "coefficients": dict(self.coefficients),
            "residual_history": list(self.residual_history),
            "converged": self.converged,
            "flops": self.flops,
            "degraded": self.degraded,
        }

    @staticmethod
    def from_json(data: Mapping) -> "CaseResult":
        spec = CaseSpec(
            config=data["config"],
            wind=data["wind"],
            solver=data.get("solver", "cart3d"),
            settings=data.get("settings", ()),
        )
        return CaseResult(
            spec=spec,
            coefficients=dict(data["coefficients"]),
            residual_history=tuple(data.get("residual_history", ())),
            converged=bool(data.get("converged", True)),
            flops=float(data.get("flops", 0.0)),
            degraded=bool(data.get("degraded", False)),
        )


@runtime_checkable
class SolverProtocol(Protocol):
    """What both flow solvers expose: ``solve -> history/forces/counters``.

    ``size`` is the unified mesh-size accessor (flow cells for Cart3D,
    grid points for NSU3D); the old ``ncells``/``npoints`` names remain
    as deprecation shims on the concrete classes.
    """

    history: Any
    counters: Any

    @property
    def size(self) -> int: ...

    @property
    def ndof(self) -> int: ...

    def solve(
        self, ncycles: int = ..., tol_orders: float = ..., cycle: str = ...
    ) -> ConvergenceHistory: ...

    def forces(self) -> dict: ...

    def residual_norm(self) -> float: ...


def case_result(solver: SolverProtocol, spec: CaseSpec,
                converged_orders: float = 2.0) -> CaseResult:
    """Package a solved solver's state as the unified :class:`CaseResult`."""
    hist = solver.history
    return CaseResult(
        spec=spec,
        coefficients=solver.forces(),
        residual_history=tuple(hist.residuals),
        converged=hist.orders_converged() >= converged_orders,
        flops=float(getattr(solver.counters, "total_flops", 0.0)),
    )
