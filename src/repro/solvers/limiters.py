"""Slope limiters for second-order reconstruction.

Both solvers achieve second-order accuracy by extrapolating cell/point
values to face midpoints with gradients; limiters keep the extrapolation
monotone near shocks.  The van Albada limiter is the classic smooth
choice for steady-state convergence (it never fully shuts off in smooth
flow, preserving residual convergence); minmod is the robust fallback.
"""

from __future__ import annotations

import numpy as np


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise minmod of two slopes."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    same = a * b > 0
    return np.where(same, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def van_albada(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Van Albada average of two slopes (smooth limiter)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    num = (b * b + eps) * a + (a * a + eps) * b
    den = a * a + b * b + 2 * eps
    out = num / den
    return np.where(a * b > 0, out, 0.0)


def venkatakrishnan_phi(
    dmax: np.ndarray, dmin: np.ndarray, d2: np.ndarray, eps2: float
) -> np.ndarray:
    """Venkatakrishnan limiter value for one extrapolation ``d2``.

    ``dmax``/``dmin`` bound the admissible reconstruction range.
    """
    d1 = np.where(d2 > 0, dmax, dmin)
    num = (d1 * d1 + eps2) * d2 + 2 * d2 * d2 * d1
    den = d1 * d1 + 2 * d2 * d2 + d1 * d2 + eps2
    phi = np.where(
        np.abs(d2) > 1e-14, num / (np.maximum(np.abs(den), 1e-300) *
                                   np.where(d2 == 0, 1.0, d2)), 1.0
    )
    return np.clip(phi, 0.0, 1.0)


LIMITERS = {
    "minmod": minmod,
    "van_albada": van_albada,
}
