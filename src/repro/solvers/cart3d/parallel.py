"""Cart3D physics kernels for the unified distributed runtime.

Cart3D partitions by cutting the space-filling curve into contiguous
segments ("the mesh partitioner actually operates on-the-fly as the
SFC-ordered mesh file is read"), with cut cells weighted 2.1x.  That
decomposition — and the halos, multigrid transfers and cycle loop built
on it — lives in :mod:`repro.runtime` (one stack for both solvers; lint
rule R008 keeps it that way).  This module contributes only the
Cart3D-specific pieces:

* the rank-local level payload (:class:`CartLevelPart`) built from a
  halo — the face graph of the Cartesian mesh plays the role of the
  edge graph,
* :class:`Cart3DKernels` — the dict-of-partitions residual / 5-stage
  Runge-Kutta hooks the
  :class:`~repro.runtime.driver.DistributedSolveDriver` drives,
* thin deprecated shims (``partition_level``, ``local_residual``,
  ``parallel_rk_smooth``, ``parallel_residual_norm``,
  ``LocalCartDomain``) preserving the historical single-partition call
  signatures, and
* the :class:`ParallelCart3D` config facade.

Correctness contract (tested): per-rank results equal the serial solver
on the same level hierarchy to floating-point-reassociation tolerance —
smoothing and full FAS cycles, overlap on or off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kernels import KernelConfig, make_engine, use_engine
from ...runtime import (
    DistributedDomain,
    DistributedSolveDriver,
    LevelSpec,
    RuntimeConfig,
    SFCPartitioner,
    build_domain_hierarchy,
    make_exchanger,
    merge_kernel_config,
    resolve_config,
)
from ..fluxes import rusanov_flux, wall_flux
from ..gas import GAMMA, apply_positivity_floors, check_physical, pressure
from .levels import Cart3DLevel
from .residual import FLUX_FUNCTIONS
from .rk import RK_COEFFS
from .solver import FLOPS_PER_CELL_RESIDUAL


@dataclass
class CartLevelPart:
    """Rank-local slice of a Cart3D level (geometry in local numbering,
    boundary lists owned-only)."""

    vol: np.ndarray  # (nlocal,)
    face_left: np.ndarray  # local indices of the rank's assigned faces
    face_right: np.ndarray
    face_normal: np.ndarray
    wall_cell: np.ndarray  # owned-only
    wall_normal: np.ndarray
    far_cell: np.ndarray  # owned-only
    far_normal: np.ndarray


class LocalCartDomain(DistributedDomain):
    """Deprecated pre-runtime name for a Cart3D rank-local domain.

    Kept so historical constructors keep working; ``nowned`` now derives
    from the halo and the keyword is ignored.
    """

    def __init__(self, halo, vol, face_left, face_right, face_normal,
                 wall_cell, wall_normal, far_cell, far_normal,
                 nowned: int | None = None):
        super().__init__(halo, CartLevelPart(
            vol=vol, face_left=face_left, face_right=face_right,
            face_normal=face_normal, wall_cell=wall_cell,
            wall_normal=wall_normal, far_cell=far_cell,
            far_normal=far_normal,
        ))


def _local_cart_level(level: Cart3DLevel, h, part) -> CartLevelPart:
    """Rank-local payload for one halo of a flow level."""
    del part  # boundary ownership follows the halo, not the partition
    l2g = h.local_to_global()
    g2l = np.full(level.nflow, -1, dtype=np.int64)
    g2l[l2g] = np.arange(len(l2g))
    owned_mask = np.zeros(level.nflow, dtype=bool)
    owned_mask[h.owned_global] = True

    wall_sel = owned_mask[level.wall_cell]
    far_sel = owned_mask[level.far_cell]
    return CartLevelPart(
        vol=level.vol[l2g],
        face_left=h.edges[:, 0],
        face_right=h.edges[:, 1],
        face_normal=level.face_normal[h.edge_gids],
        wall_cell=g2l[level.wall_cell[wall_sel]],
        wall_normal=level.wall_normal[wall_sel],
        far_cell=g2l[level.far_cell[far_sel]],
        far_normal=level.far_normal[far_sel],
    )


def _split_faces(dom) -> tuple:
    """(interior, ghost) face split for overlapped exchange: interior
    faces touch only owned cells (computable while ghost updates are in
    transit).  Wall/far boundary lists are owned-only and go with the
    interior part."""
    cached = dom.cache.get("cart3d_split")
    if cached is None:
        ctx = dom.ctx
        gmask = (ctx.face_left >= dom.nowned) | (ctx.face_right >= dom.nowned)
        cached = (
            (ctx.face_left[~gmask], ctx.face_right[~gmask],
             ctx.face_normal[~gmask]),
            (ctx.face_left[gmask], ctx.face_right[gmask],
             ctx.face_normal[gmask]),
        )
        dom.cache["cart3d_split"] = cached
    return cached


def _globally_physical(comm, doms, qs) -> bool:
    """check_physical over the union of owned rows, agreed by allreduce
    (every rank makes the same damping decision, like the serial
    global check)."""
    bad = 0.0
    for p, dom in doms.items():
        if not check_physical(qs[p][: dom.nowned]):
            bad = 1.0
    total = comm.allreduce(np.array([bad]))
    return total[0] == 0.0


class Cart3DKernels:
    """Cart3D's :class:`~repro.runtime.driver.SolverKernels`."""

    name = "cart3d"
    #: coarse levels run first order and need the reduced RK stability
    #: margin; 0.75 reproduces the historical coarse_cfl=1.5 at the
    #: default cfl=2.0 — see the policy in :mod:`repro.runtime.multigrid`
    coarse_cfl_fraction = 0.75

    def __init__(self, qinf: np.ndarray, flux: str = "vanleer",
                 kernel_config: KernelConfig | None = None):
        self.qinf = np.asarray(qinf, dtype=np.float64)
        self.flux = flux
        self.kernel_config = (
            kernel_config if kernel_config is not None else KernelConfig()
        )
        # engines hold no compiled state, so the kernels object (and with
        # it the engine choice) stays picklable for WorkerSpec transport
        self.engine = make_engine(self.kernel_config)

    # -- driver hooks --------------------------------------------------------

    def init_state(self, dom) -> np.ndarray:
        return np.tile(self.qinf, (dom.nlocal, 1))

    def volumes(self, dom) -> np.ndarray:
        return dom.ctx.vol

    def fix_restricted_state(self, dom, q: np.ndarray) -> np.ndarray:
        return q  # cut-cell BCs are flux-based; no strong state fixup

    def mask_forcing(self, dom, f: np.ndarray) -> np.ndarray:
        return f

    def defect(self, X, doms, qs, forcing=None) -> dict:
        with use_engine(self.engine):
            return self._completed_residual(X, doms, qs, forcing, None)

    def residual_norm(self, comm, X, doms, qs) -> float:
        """Global volume-scaled L2 density-residual norm (allreduce)."""
        rs = self.defect(X, doms, qs)
        local_sq = 0.0
        local_n = 0.0
        for p, dom in doms.items():
            own = slice(0, dom.nowned)
            local_sq += float(
                np.sum((rs[p][own, 0] / dom.ctx.vol[own]) ** 2)
            )
            local_n += float(dom.nowned)
        total = comm.allreduce(np.array([local_sq, local_n]))
        return float(np.sqrt(total[0] / total[1]))

    def apply_correction(self, comm, X, doms, qs, dqs) -> dict:
        """Serial guard, made global: fall back to a damped correction
        if prolongation produced an unphysical state, with the damping
        decision agreed across ranks."""
        cand = {p: qs[p] + dqs[p] for p in doms}
        scale = 1.0
        while not _globally_physical(comm, doms, cand) and scale > 1e-3:
            scale *= 0.5
            cand = {p: qs[p] + scale * dqs[p] for p in doms}
        if _globally_physical(comm, doms, cand):
            qs = cand
        return qs

    def smooth(self, X, doms, qs, *, forcing=None, cfl: float = 2.0,
               nsteps: int = 1, overlap: bool = False,
               in_cycle: bool = False) -> dict:
        """Domain-decomposed 5-stage RK with ghost refresh per stage,
        overlapped with the next stage's interior residual when
        ``overlap`` is set.

        ``in_cycle=True`` reproduces the serial smoother's globally
        agreed stage-damping guard (multigrid parity); ``in_cycle=False``
        keeps the historical standalone behavior of clipping to
        positivity floors instead.
        """
        engine = self.engine
        with use_engine(engine):
            qs = dict(qs)
            X.copy(qs, tag=22)
            pending = None
            for _ in range(nsteps):
                if pending is not None:
                    pending.finish()
                    pending = None
                dt = self._time_step(X, doms, qs, cfl)
                dtov = {p: dt[p] / doms[p].ctx.vol for p in doms}
                q0 = {p: qs[p].copy() for p in doms}
                for alpha in RK_COEFFS:
                    rs = self._completed_residual(
                        X, doms, qs, forcing, pending
                    )
                    pending = None
                    if in_cycle:
                        cand = {
                            p: engine.rk_update(q0[p], alpha * dtov[p], rs[p])
                            for p in doms
                        }
                        if not _globally_physical(X.comm, doms, cand):
                            # halve the step until physical (rarely more
                            # than once); the decision is collective so
                            # all ranks damp identically
                            scale = 0.5
                            for _ in range(6):
                                cand = {
                                    p: engine.rk_update(
                                        q0[p], scale * alpha * dtov[p], rs[p]
                                    )
                                    for p in doms
                                }
                                if _globally_physical(X.comm, doms, cand):
                                    break
                                scale *= 0.5
                            else:
                                raise FloatingPointError(
                                    "RK stage unrecoverable: negative "
                                    "density/pressure"
                                )
                        qs = cand
                    else:
                        qs = {
                            p: apply_positivity_floors(
                                engine.rk_update(
                                    q0[p], alpha * dtov[p], rs[p]
                                )
                            )
                            for p in doms
                        }
                    if overlap:
                        pending = X.start_copy(qs, tag=23)
                    else:
                        X.copy(qs, tag=23)
            if pending is not None:
                pending.finish()
        return qs

    # -- internals -----------------------------------------------------------

    def _face_residual(self, dom, q, faces, boundary: bool) -> np.ndarray:
        """Flux accumulation over a face subset (plus the owned-only
        wall/far boundary fluxes when ``boundary``)."""
        flux_fn = FLUX_FUNCTIONS[self.flux]
        engine = self.engine
        ctx = dom.ctx
        fl, fr, fn = faces
        r = np.zeros_like(q)
        f = flux_fn(q[fl], q[fr], fn)
        engine.scatter_add(r, fl, f)
        engine.scatter_add(r, fr, -f)
        if boundary:
            if len(ctx.wall_cell):
                engine.scatter_add(
                    r, ctx.wall_cell,
                    wall_flux(q[ctx.wall_cell], ctx.wall_normal),
                )
            if len(ctx.far_cell):
                qf = np.broadcast_to(
                    self.qinf, (len(ctx.far_cell), q.shape[1])
                )
                engine.scatter_add(
                    r, ctx.far_cell,
                    rusanov_flux(q[ctx.far_cell], qf, ctx.far_normal),
                )
        return r

    def _completed_residual(self, X, doms, qs, forcing, pending) -> dict:
        """Residual completed across ranks: local flux accumulation
        (split into interior/ghost faces when finishing an overlapped
        exchange), exchange-add to owners, ghost rows zeroed, forcing
        subtracted."""
        rs = {}
        if pending is None:
            for p, dom in doms.items():
                ctx = dom.ctx
                faces = (ctx.face_left, ctx.face_right, ctx.face_normal)
                rs[p] = self._face_residual(dom, qs[p], faces, True)
            X.charge(self._flops(doms))
        else:
            # paper fig. 7: compute the interior while ghost values are
            # in transit, then finish the exchange and add the
            # ghost-touching face contributions
            for p, dom in doms.items():
                interior, _ghost = _split_faces(dom)
                rs[p] = self._face_residual(dom, qs[p], interior, True)
            X.charge(self._flops(doms))
            pending.finish()
            for p, dom in doms.items():
                _interior, ghost = _split_faces(dom)
                rs[p] = rs[p] + self._face_residual(dom, qs[p], ghost, False)
        X.add(rs, tag=1)
        out = {}
        for p, dom in doms.items():
            r = rs[p]
            r[dom.nowned:] = 0.0
            if forcing is not None:
                r = r - forcing[p]
            out[p] = r
        return out

    def _time_step(self, X, doms, qs, cfl) -> dict:
        """Local spectral-radius accumulation completed across ranks."""
        engine = self.engine
        accs = {}
        for p, dom in doms.items():
            ctx = dom.ctx
            q = qs[p]
            pr = pressure(q)
            c = np.sqrt(GAMMA * pr / q[:, 0])
            u = q[:, 1:4] / q[:, 0:1]
            acc = np.zeros((dom.nlocal, 1), dtype=np.float64)

            def term(cells, normals):
                area = np.linalg.norm(normals, axis=1)
                un = np.abs(np.einsum("nd,nd->n", u[cells], normals))
                engine.scatter_add(acc[:, 0], cells, un + c[cells] * area)

            term(ctx.face_left, ctx.face_normal)
            term(ctx.face_right, ctx.face_normal)
            if len(ctx.wall_cell):
                term(ctx.wall_cell, ctx.wall_normal)
            if len(ctx.far_cell):
                term(ctx.far_cell, ctx.far_normal)
            accs[p] = acc
        X.add(accs, tag=21)
        return {
            p: cfl * dom.ctx.vol / np.maximum(accs[p][:, 0], 1e-300)
            for p, dom in doms.items()
        }

    def _flops(self, doms) -> float:
        return float(sum(
            dom.nlocal * FLOPS_PER_CELL_RESIDUAL for dom in doms.values()
        ))


# -- deprecated single-partition shims ---------------------------------------


def partition_level(level: Cart3DLevel, nparts: int) -> tuple[list, np.ndarray]:
    """SFC-segment decomposition of a flow level into local domains.

    .. deprecated::
        Kept as a shim over :mod:`repro.runtime` — build domains with
        :class:`~repro.runtime.SFCPartitioner` and
        :func:`~repro.runtime.build_domain_set` instead.  The partition
        vector and domain payloads are identical to the historical ones
        (same cut-cell weighting, same curve segmentation).
    """
    part = SFCPartitioner.from_level(level).partition(nparts)
    hierarchy = build_domain_hierarchy(
        [LevelSpec(
            nvert=level.nflow,
            edges=np.column_stack([level.face_left, level.face_right]),
            payload=lambda h, p: _local_cart_level(level, h, p),
        )],
        [],
        part,
    )
    top = hierarchy.levels[0]
    return top.domains, top.part


def _single(comm, dom) -> tuple:
    pid = dom.halo.rank
    return pid, make_exchanger("plan", comm, plans={pid: dom.halo.plan})


def local_residual(comm, dom, q: np.ndarray, qinf,
                   flux: str = "vanleer") -> np.ndarray:
    """Complete residual on owned cells (deprecated single-partition
    shim over :class:`Cart3DKernels`)."""
    pid, X = _single(comm, dom)
    kern = Cart3DKernels(qinf, flux=flux)
    return kern.defect(X, {pid: dom}, {pid: q})[pid]


def parallel_rk_smooth(
    comm,
    dom,
    q: np.ndarray,
    qinf: np.ndarray,
    cfl: float = 2.0,
    flux: str = "vanleer",
    nsteps: int = 1,
) -> np.ndarray:
    """Domain-decomposed 5-stage RK (deprecated single-partition shim
    over :class:`Cart3DKernels`)."""
    pid, X = _single(comm, dom)
    kern = Cart3DKernels(qinf, flux=flux)
    return kern.smooth(X, {pid: dom}, {pid: q}, cfl=cfl, nsteps=nsteps)[pid]


def parallel_residual_norm(comm, dom, q, qinf,
                           flux: str = "vanleer") -> float:
    """Global volume-scaled L2 density-residual norm (allreduce)."""
    pid, X = _single(comm, dom)
    kern = Cart3DKernels(qinf, flux=flux)
    return kern.residual_norm(comm, X, {pid: dom}, {pid: q})


class ParallelCart3D:
    """Config facade: the decomposed Euler solver under any backend.

    Execution is selected by a
    :class:`~repro.runtime.config.RuntimeConfig` (or the ``backend=``
    shorthand): ``sim``/``hybrid`` run on SimMPI worlds, ``process`` on
    a spawned worker pool — call :meth:`solve` for the config-driven
    path, or :meth:`run` with your own world for the historical SimMPI
    signature.  The historical constructor (fine level only — pure
    smoothing runs) keeps working; pass ``levels``/``transfers`` from a
    serial solver (or use :meth:`from_solver`) to run full distributed
    FAS cycles.  The bare ``overlap``/``charge_compute``/``sanitize``
    keywords are deprecated spellings of the config fields.
    """

    def __init__(self, level: Cart3DLevel, qinf: np.ndarray, nparts: int,
                 flux: str = "vanleer", *, levels: list | None = None,
                 transfers: list | None = None,
                 config: RuntimeConfig | None = None,
                 backend: str | None = None,
                 kernel_config: KernelConfig | None = None,
                 overlap: bool | None = None,
                 charge_compute: bool | None = None,
                 sanitize: bool | None = None):
        config = resolve_config(
            config, backend, where="ParallelCart3D", overlap=overlap,
            charge_compute=charge_compute, sanitize=sanitize,
        )
        config = merge_kernel_config(config, kernel_config, "ParallelCart3D")
        # the historical fine-level-only constructor runs plain
        # smoothing steps; a caller-supplied hierarchy runs full cycles
        # even when it has a single level (matching the serial solvers)
        smoothing_only = levels is None
        levels = list(levels) if levels is not None else [level]
        clusters = [t.parent for t in transfers] if transfers else []
        part = SFCPartitioner.from_level(levels[0]).partition(nparts)
        specs = [
            LevelSpec(
                nvert=lvl.nflow,
                edges=np.column_stack([lvl.face_left, lvl.face_right]),
                payload=lambda h, p, lvl=lvl: _local_cart_level(lvl, h, p),
            )
            for lvl in levels
        ]
        self.hierarchy = build_domain_hierarchy(specs, clusters, part)
        self.kernels = Cart3DKernels(
            qinf, flux=flux, kernel_config=config.kernels
        )
        self.driver = DistributedSolveDriver(
            self.hierarchy, self.kernels, qinf, config=config,
            smoothing_only=smoothing_only,
        )
        self.config = self.driver.config
        self.domains = self.hierarchy.levels[0].domains
        self.part = part
        self.level = levels[0]
        self.qinf = qinf
        self.nparts = nparts
        self.flux = flux

    @classmethod
    def from_solver(cls, solver, nparts: int, *,
                    config: RuntimeConfig | None = None,
                    backend: str | None = None,
                    kernel_config: KernelConfig | None = None,
                    overlap: bool | None = None,
                    charge_compute: bool | None = None,
                    sanitize: bool | None = None) -> "ParallelCart3D":
        """Decompose a serial :class:`Cart3DSolver`'s level hierarchy.

        The distributed path runs first order (like the serial coarse
        levels); second-order fine-level reconstruction needs
        distributed least-squares gradients and stays serial.  With no
        explicit engine selection the solver's own ``kernel_config``
        carries over.
        """
        config = resolve_config(
            config, backend, where="ParallelCart3D.from_solver",
            overlap=overlap, charge_compute=charge_compute,
            sanitize=sanitize,
        )
        if kernel_config is None and config.kernels is None:
            kernel_config = getattr(solver, "kernel_config", None)
        return cls(
            solver.levels[0], solver.qinf, nparts, flux=solver.flux,
            levels=solver.levels, transfers=solver.transfers,
            config=config, kernel_config=kernel_config,
        )

    def run(self, world, ncycles: int, cfl: float = 2.0, *,
            cycle: str = "W", nu1: int = 1, nu2: int = 1,
            coarse_cfl: float | None = None):
        """Iterate on a caller-supplied SimMPI world; returns
        (global q over flow cells, residual history)."""
        return self.driver.run(
            world, ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
            coarse_cfl=coarse_cfl,
        )

    def solve(self, ncycles: int, cfl: float = 2.0, *,
              cycle: str = "W", nu1: int = 1, nu2: int = 1,
              coarse_cfl: float | None = None):
        """Config-driven iterate (builds the backend's own world);
        returns (global q over flow cells, residual history)."""
        return self.driver.solve(
            ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
            coarse_cfl=coarse_cfl,
        )

    def close(self) -> None:
        """Release backend resources (the process backend's workers)."""
        self.driver.close()

    def __enter__(self) -> "ParallelCart3D":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
