"""Domain-decomposed Cart3D over SimMPI (paper section V).

Cart3D partitions by cutting the space-filling curve into contiguous
segments ("the mesh partitioner actually operates on-the-fly as the
SFC-ordered mesh file is read"), with cut cells weighted 2.1x.  This
driver does exactly that: the flow cells, already in SFC order, are split
by :func:`repro.partition.sfcpart.sfc_partition`; cross-partition faces
create ghost cells; residual evaluation accumulates to owners and the
Runge-Kutta update runs on owned cells with ghost refresh per stage.

The halo machinery is shared with the NSU3D driver — the face graph of
the Cartesian mesh plays the role of the edge graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...comm.exchange import LocalHalo, build_halos
from ...comm.simmpi import SimMPI
from ...partition.sfcpart import cell_weights, sfc_partition
from ...telemetry.spans import get_tracer, span as _span
from ..fluxes import rusanov_flux, wall_flux
from ..gas import apply_positivity_floors
from .levels import Cart3DLevel
from .residual import FLUX_FUNCTIONS
from .rk import RK_COEFFS


@dataclass
class LocalCartDomain:
    """One rank's share of a Cart3D level."""

    halo: LocalHalo
    vol: np.ndarray  # (nlocal,)
    face_left: np.ndarray  # local indices of the rank's assigned faces
    face_right: np.ndarray
    face_normal: np.ndarray
    wall_cell: np.ndarray  # owned-only
    wall_normal: np.ndarray
    far_cell: np.ndarray  # owned-only
    far_normal: np.ndarray
    nowned: int

    @property
    def nlocal(self) -> int:
        return len(self.vol)


def partition_level(level: Cart3DLevel, nparts: int) -> tuple[list, np.ndarray]:
    """SFC-segment decomposition of a flow level into local domains."""
    weights = cell_weights(level.cut.is_cut_flow())
    part = sfc_partition(weights, nparts)

    edges = np.column_stack([level.face_left, level.face_right])
    halos = build_halos(level.nflow, edges, part)
    domains = []
    for h in halos:
        l2g = h.local_to_global()
        g2l = np.full(level.nflow, -1, dtype=np.int64)
        g2l[l2g] = np.arange(len(l2g))
        owned_mask = np.zeros(level.nflow, dtype=bool)
        owned_mask[h.owned_global] = True

        wall_sel = owned_mask[level.wall_cell]
        far_sel = owned_mask[level.far_cell]
        domains.append(
            LocalCartDomain(
                halo=h,
                vol=level.vol[l2g],
                face_left=h.edges[:, 0],
                face_right=h.edges[:, 1],
                face_normal=level.face_normal[h.edge_gids],
                wall_cell=g2l[level.wall_cell[wall_sel]],
                wall_normal=level.wall_normal[wall_sel],
                far_cell=g2l[level.far_cell[far_sel]],
                far_normal=level.far_normal[far_sel],
                nowned=h.nowned,
            )
        )
    return domains, part


def local_residual(comm, dom: LocalCartDomain, q: np.ndarray, qinf,
                   flux: str = "vanleer") -> np.ndarray:
    """Complete residual on owned cells (ghost rows zeroed)."""
    flux_fn = FLUX_FUNCTIONS[flux]
    r = np.zeros_like(q)
    f = flux_fn(q[dom.face_left], q[dom.face_right], dom.face_normal)
    np.add.at(r, dom.face_left, f)
    np.add.at(r, dom.face_right, -f)
    if len(dom.wall_cell):
        np.add.at(r, dom.wall_cell, wall_flux(q[dom.wall_cell], dom.wall_normal))
    if len(dom.far_cell):
        qf = np.broadcast_to(qinf, (len(dom.far_cell), q.shape[1]))
        np.add.at(
            r, dom.far_cell, rusanov_flux(q[dom.far_cell], qf, dom.far_normal)
        )
    dom.halo.plan.exchange_add(comm, r)
    r[dom.nowned:] = 0.0
    return r


def _local_time_step(comm, dom: LocalCartDomain, q, cfl):
    from ..gas import GAMMA, pressure

    p = pressure(q)
    c = np.sqrt(GAMMA * p / q[:, 0])
    u = q[:, 1:4] / q[:, 0:1]
    acc = np.zeros((dom.nlocal, 1), dtype=np.float64)

    def term(cells, normals):
        area = np.linalg.norm(normals, axis=1)
        un = np.abs(np.einsum("nd,nd->n", u[cells], normals))
        np.add.at(acc[:, 0], cells, un + c[cells] * area)

    term(dom.face_left, dom.face_normal)
    term(dom.face_right, dom.face_normal)
    if len(dom.wall_cell):
        term(dom.wall_cell, dom.wall_normal)
    if len(dom.far_cell):
        term(dom.far_cell, dom.far_normal)
    dom.halo.plan.exchange_add(comm, acc, tag=21)
    return cfl * dom.vol / np.maximum(acc[:, 0], 1e-300)


def parallel_rk_smooth(
    comm,
    dom: LocalCartDomain,
    q: np.ndarray,
    qinf: np.ndarray,
    cfl: float = 2.0,
    flux: str = "vanleer",
    nsteps: int = 1,
) -> np.ndarray:
    """Domain-decomposed 5-stage RK with ghost refresh per stage."""
    dom.halo.plan.exchange_copy(comm, q, tag=22)
    for _ in range(nsteps):
        dt = _local_time_step(comm, dom, q, cfl)
        q0 = q.copy()
        for alpha in RK_COEFFS:
            r = local_residual(comm, dom, q, qinf, flux=flux)
            q = apply_positivity_floors(
                q0 - alpha * (dt / dom.vol)[:, None] * r
            )
            dom.halo.plan.exchange_copy(comm, q, tag=23)
    return q


def parallel_residual_norm(comm, dom: LocalCartDomain, q, qinf,
                           flux: str = "vanleer") -> float:
    r = local_residual(comm, dom, q, qinf, flux=flux)
    own = slice(0, dom.nowned)
    local = np.array(
        [float(np.sum((r[own, 0] / dom.vol[own]) ** 2)), float(dom.nowned)]
    )
    total = comm.allreduce(local)
    return float(np.sqrt(total[0] / total[1]))


class ParallelCart3D:
    """Facade running the decomposed Euler solver on a SimMPI world."""

    def __init__(self, level: Cart3DLevel, qinf: np.ndarray, nparts: int,
                 flux: str = "vanleer"):
        self.domains, self.part = partition_level(level, nparts)
        self.level = level
        self.qinf = qinf
        self.flux = flux

    def run(self, world: SimMPI, ncycles: int, cfl: float = 2.0):
        """Returns (global q over flow cells, residual history)."""
        qinf, domains, flux = self.qinf, self.domains, self.flux

        def body(comm):
            dom = domains[comm.rank]
            q = np.tile(qinf, (dom.nlocal, 1))
            history = []
            # per-rank track identity + virtual clock for all spans below
            with get_tracer().bind(rank=comm.rank,
                                   clock=lambda: comm.clock):
                for _ in range(ncycles):
                    with _span("cart3d.parallel_cycle", cat="solver"):
                        q = parallel_rk_smooth(
                            comm, dom, q, qinf, cfl=cfl, flux=flux
                        )
                        history.append(
                            parallel_residual_norm(comm, dom, q, qinf, flux)
                        )
            return dom.halo.owned_global, q[: dom.nowned], history

        results = world.run(body)
        q_global = np.empty((self.level.nflow, len(qinf)), dtype=np.float64)
        for gids, q_owned, history in results:
            q_global[gids] = q_owned
        return q_global, results[0][2]
