"""Flux residual for the cell-centered Euler scheme.

The residual of a cell is the net outflow of the conserved quantities:
``R_i = sum_faces F . S`` with the slip-wall pressure flux on embedded
walls and a Rusanov flux against the freestream state on farfield faces.
Second-order accuracy (Cart3D's production setting) comes from
least-squares gradients with van-Albada-limited extrapolation; the
first-order path is what the multigrid coarse levels use, as is
standard.
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ..fluxes import roe_flux, rusanov_flux, van_leer_flux, wall_flux
from .levels import Cart3DLevel

FLUX_FUNCTIONS = {
    "vanleer": van_leer_flux,
    "roe": roe_flux,
    "rusanov": rusanov_flux,
}


def ls_gradient_setup(level: Cart3DLevel) -> tuple[np.ndarray, np.ndarray]:
    """Precompute least-squares gradient geometry.

    Returns ``(ainv, centers)`` where ``ainv`` is the per-cell inverse
    normal matrix ``(sum dr dr^T)^-1`` over face neighbors (regularized
    for cells with too few neighbors).
    """
    centers = level.cut.mesh.centers()[level.cut.flow_cells]
    dim = centers.shape[1]
    a = np.zeros((level.nflow, dim, dim), dtype=np.float64)
    dr = centers[level.face_right] - centers[level.face_left]
    outer = dr[:, :, None] * dr[:, None, :]
    engine = get_engine()
    engine.scatter_add(a, level.face_left, outer)
    engine.scatter_add(a, level.face_right, outer)
    # regularize rank-deficient cells
    scale = np.trace(a, axis1=1, axis2=2)
    eye = np.eye(dim)[None, :, :]
    a += 1e-8 * np.maximum(scale, 1e-30)[:, None, None] * eye
    return np.linalg.inv(a), centers


def ls_gradients(
    level: Cart3DLevel, q: np.ndarray, ainv: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """(nflow, dim, nvar) least-squares gradients of all variables."""
    dim = centers.shape[1]
    rhs = np.zeros((level.nflow, dim, q.shape[1]), dtype=np.float64)
    dr = centers[level.face_right] - centers[level.face_left]
    dq = q[level.face_right] - q[level.face_left]
    contrib = dr[:, :, None] * dq[:, None, :]
    engine = get_engine()
    engine.scatter_add(rhs, level.face_left, contrib)
    engine.scatter_add(rhs, level.face_right, contrib)
    return np.einsum("nij,njk->nik", ainv, rhs)


def residual(
    level: Cart3DLevel,
    q: np.ndarray,
    qinf: np.ndarray,
    flux: str = "vanleer",
    order2: bool = False,
    grad_setup=None,
) -> np.ndarray:
    """Net-outflow residual (nflow, 5); zero at steady state."""
    flux_fn = FLUX_FUNCTIONS[flux]
    engine = get_engine()
    r = np.zeros_like(q)

    ql = q[level.face_left]
    qr = q[level.face_right]
    if order2:
        if grad_setup is None:
            grad_setup = ls_gradient_setup(level)
        ainv, centers = grad_setup
        grad = ls_gradients(level, q, ainv, centers)
        mid = 0.5 * (centers[level.face_left] + centers[level.face_right])
        dl = mid - centers[level.face_left]
        drr = mid - centers[level.face_right]
        dql = np.einsum("nd,ndk->nk", dl, grad[level.face_left])
        dqr = np.einsum("nd,ndk->nk", drr, grad[level.face_right])
        # van-Albada style scalar limiting against the face jump
        jump = qr - ql
        dql = _limit(dql, 0.5 * jump)
        dqr = _limit(dqr, -0.5 * jump)
        ql = ql + dql
        qr = qr + dqr
        # fall back to first order where reconstruction went unphysical
        bad = (ql[:, 0] <= 0) | (qr[:, 0] <= 0)
        if bad.any():
            ql[bad] = q[level.face_left][bad]
            qr[bad] = q[level.face_right][bad]

    f = flux_fn(ql, qr, level.face_normal)
    engine.scatter_add(r, level.face_left, f)
    engine.scatter_add(r, level.face_right, -f)

    if len(level.wall_cell):
        fw = wall_flux(q[level.wall_cell], level.wall_normal)
        engine.scatter_add(r, level.wall_cell, fw)
    if len(level.far_cell):
        qf = np.broadcast_to(qinf, (len(level.far_cell), q.shape[1]))
        ff = rusanov_flux(q[level.far_cell], qf, level.far_normal)
        engine.scatter_add(r, level.far_cell, ff)
    return r


def _limit(dq: np.ndarray, ref: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Van Albada blend of the reconstruction against the face jump."""
    num = (ref * ref + eps) * dq + (dq * dq + eps) * ref
    den = dq * dq + ref * ref + 2 * eps
    out = num / den
    return np.where(dq * ref > 0, out, 0.0)


def spectral_radius(level: Cart3DLevel, q: np.ndarray) -> np.ndarray:
    """Per-cell sum of |u.n| + c |S| over faces — the local-time-step
    denominator."""
    from ..gas import GAMMA, pressure

    p = pressure(q)
    c = np.sqrt(GAMMA * p / q[:, 0])
    u = q[:, 1:4] / q[:, 0:1]
    engine = get_engine()
    out = np.zeros(level.nflow, dtype=np.float64)

    def face_term(cells, normals, other=None):
        area = np.linalg.norm(normals, axis=1)
        un = np.abs(np.einsum("nd,nd->n", u[cells], normals))
        lam = un + c[cells] * area
        engine.scatter_add(out, cells, lam)

    face_term(level.face_left, level.face_normal)
    face_term(level.face_right, level.face_normal)
    if len(level.wall_cell):
        face_term(level.wall_cell, level.wall_normal)
    if len(level.far_cell):
        face_term(level.far_cell, level.far_normal)
    return out
