"""Cart3D-style inviscid cut-cell Cartesian solver (paper section V)."""

from .levels import Cart3DLevel, TransferOp, build_levels
from .multigrid import fas_cycle
from .residual import FLUX_FUNCTIONS, ls_gradient_setup, residual, spectral_radius
from .rk import RK_COEFFS, local_time_step, residual_norm, rk_smooth
from .parallel import (
    LocalCartDomain,
    ParallelCart3D,
    parallel_rk_smooth,
    partition_level,
)
from .solver import Cart3DSolver, ConvergenceHistory

__all__ = [
    "ParallelCart3D",
    "partition_level",
    "parallel_rk_smooth",
    "LocalCartDomain",
    "Cart3DSolver",
    "ConvergenceHistory",
    "Cart3DLevel",
    "TransferOp",
    "build_levels",
    "fas_cycle",
    "residual",
    "spectral_radius",
    "ls_gradient_setup",
    "FLUX_FUNCTIONS",
    "rk_smooth",
    "local_time_step",
    "residual_norm",
    "RK_COEFFS",
]
