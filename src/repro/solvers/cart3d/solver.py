"""Cart3DSolver — the user-facing inviscid analysis facade.

Bundles meshing (or a user mesh), the multigrid hierarchy, the RK/FAS
iteration and force integration into the object the examples, database
machinery and benchmarks drive.  Mirrors the paper's solver module: a
cell-centered upwind finite-volume Euler scheme with multigrid
accelerated 5-stage Runge-Kutta smoothing on SFC-coarsened Cartesian
meshes (section V).
"""

from __future__ import annotations

import numpy as np

from ...kernels import KernelConfig, make_engine, use_engine
from ...machine.counters import PerfCounters
from ...mesh.cartesian import CartesianMesh
from ...mesh.cartesian.geometry import ImplicitSolid
from ..gas import NVAR_EULER, freestream
from ..interface import ConvergenceHistory, deprecated_accessor
from .levels import build_levels
from .multigrid import fas_cycle
from .residual import ls_gradient_setup, residual
from .rk import residual_norm

#: Calibrated FLOP counts per cell per residual evaluation / RK cycle —
#: fed to the pfmon-style counters and the performance model.
FLOPS_PER_CELL_RESIDUAL = 420.0
FLOPS_PER_CELL_RK_CYCLE = 5 * FLOPS_PER_CELL_RESIDUAL + 180.0

__all__ = ["Cart3DSolver", "ConvergenceHistory"]


class Cart3DSolver:
    """Inviscid cut-cell Cartesian flow solver with multigrid.

    Parameters mirror the paper's setup: ``mg_levels=4`` is the SSLV
    baseline ("The baseline solution algorithm used 4 levels of
    multigrid"); ``mg_levels=1`` is the single-grid comparator of
    figure 21.
    """

    def __init__(
        self,
        solid: ImplicitSolid,
        mesh: CartesianMesh | None = None,
        dim: int = 3,
        base_level: int = 3,
        max_level: int = 5,
        mg_levels: int = 4,
        mach: float = 0.5,
        alpha_deg: float = 0.0,
        beta_deg: float = 0.0,
        flux: str = "vanleer",
        cfl: float = 2.0,
        order2: bool = False,
        curve: str = "hilbert",
        counters: PerfCounters | None = None,
        kernel_config: KernelConfig | None = None,
    ):
        self.levels, self.transfers = build_levels(
            solid, mesh=mesh, dim=dim, base_level=base_level,
            max_level=max_level, mg_levels=mg_levels, curve=curve,
        )
        self.qinf = freestream(mach, alpha_deg, beta_deg, nvar=NVAR_EULER)
        self.mach = mach
        self.alpha_deg = alpha_deg
        self.beta_deg = beta_deg
        self.flux = flux
        self.cfl = cfl
        self.order2 = order2
        self.counters = counters if counters is not None else PerfCounters()
        self.kernel_config = (
            kernel_config if kernel_config is not None else KernelConfig()
        )
        self.engine = make_engine(self.kernel_config)
        self.grad_setups = (
            [ls_gradient_setup(self.levels[0])] if order2 else None
        )
        self.q = np.tile(self.qinf, (self.levels[0].nflow, 1))
        self.history = ConvergenceHistory()

    @property
    def mg_levels(self) -> int:
        return len(self.levels)

    @property
    def size(self) -> int:
        """Unified mesh-size accessor (:class:`SolverProtocol`): flow cells."""
        return self.levels[0].nflow

    @property
    def ncells(self) -> int:
        """Deprecated: use :attr:`size`."""
        deprecated_accessor("Cart3DSolver.ncells", "Cart3DSolver.size")
        return self.size

    @property
    def ndof(self) -> int:
        """Paper: 'solves five equations for each cell in the domain'."""
        return self.size * NVAR_EULER

    def run_cycle(self, cycle: str = "W") -> float:
        """One multigrid cycle; returns the post-cycle residual norm."""
        with self.counters.region("mg_cycle"), use_engine(self.engine):
            self.q = fas_cycle(
                self.levels, self.transfers, self.q, self.qinf,
                cycle=cycle, cfl=self.cfl, flux=self.flux,
                order2=self.order2, grad_setups=self.grad_setups,
            )
            work = sum(
                lvl.nflow * FLOPS_PER_CELL_RK_CYCLE *
                (2 ** min(i, 5) if cycle == "W" else 1)
                for i, lvl in enumerate(self.levels)
            )
            self.counters.add_flops(work)
        r = self.residual_norm()
        self.history.residuals.append(r)
        self.history.forces.append(self.forces())
        return r

    def solve(
        self, ncycles: int = 100, tol_orders: float = 6.0, cycle: str = "W"
    ) -> ConvergenceHistory:
        """Iterate until the residual drops ``tol_orders`` decades or the
        cycle budget runs out."""
        r0 = None
        for _ in range(ncycles):
            r = self.run_cycle(cycle=cycle)
            if r0 is None:
                r0 = max(r, 1e-300)
            if r <= r0 * 10.0 ** (-tol_orders):
                break
        return self.history

    # -- outputs ------------------------------------------------------------

    def forces(self) -> dict:
        """Pressure force integration over the embedded walls.

        Only surface pressures, forces and moments are stored during
        database fills (paper section V) — this is that record.
        """
        from ..gas import pressure

        level = self.levels[0]
        if len(level.wall_cell) == 0:
            zero = {k: 0.0 for k in ("fx", "fy", "fz", "cl", "cd", "cm")}
            return zero
        p = pressure(self.q[level.wall_cell])
        pinf = pressure(self.qinf[None, :])[0]
        force = ((p - pinf)[:, None] * level.wall_normal).sum(axis=0)

        # moment about the wall-centroid (pitching, about y)
        centers = level.cut.mesh.centers()[
            level.cut.flow_cells[level.wall_cell]
        ]
        if centers.shape[1] == 2:  # 2-D meshes live in the z=const plane
            centers = np.column_stack(
                [centers, np.full(len(centers), 0.5, dtype=np.float64)]
            )
        ref = centers.mean(axis=0)
        arm = centers - ref
        df = (p - pinf)[:, None] * level.wall_normal
        moment = np.cross(arm, df).sum(axis=0)

        qdyn = 0.5 * float(self.qinf[0]) * self.mach**2
        sref = np.linalg.norm(level.wall_normal, axis=1).sum() / 6.0
        a = np.radians(self.alpha_deg)
        drag_dir = np.array([np.cos(a), 0.0, np.sin(a)])
        lift_dir = np.array([-np.sin(a), 0.0, np.cos(a)])
        denom = max(qdyn * sref, 1e-300)
        return {
            "fx": float(force[0]),
            "fy": float(force[1]),
            "fz": float(force[2]),
            "cd": float(force @ drag_dir) / denom,
            "cl": float(force @ lift_dir) / denom,
            "cm": float(moment[1]) / denom,
        }

    def surface_pressures(self) -> tuple[np.ndarray, np.ndarray]:
        """(wall face centers, pressures) — the other database payload."""
        from ..gas import pressure

        level = self.levels[0]
        centers = level.cut.mesh.centers()[
            level.cut.flow_cells[level.wall_cell]
        ]
        return centers, pressure(self.q[level.wall_cell])

    def residual_norm(self) -> float:
        with use_engine(self.engine):
            return residual_norm(
                self.levels[0], self.q, self.qinf, flux=self.flux,
                order2=self.order2,
                grad_setup=self.grad_setups[0] if self.grad_setups else None,
            )

    def level_residual(self, lvl: int) -> np.ndarray:
        """Raw residual on one level (used by the parallel driver's
        consistency tests)."""
        with use_engine(self.engine):
            return residual(
                self.levels[lvl],
                self.q if lvl == 0
                else np.tile(self.qinf, (self.levels[lvl].nflow, 1)),
                self.qinf,
                flux=self.flux,
            )
