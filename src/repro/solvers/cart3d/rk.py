"""Multistage Runge-Kutta smoother with local time stepping.

Cart3D advances to steady state with a "multigrid accelerated
Runge-Kutta scheme" (paper section V).  We use the classic 5-stage
Jameson coefficients; each cell runs at its own maximum-stable time step
(steady-state convergence acceleration, not time accuracy).
"""

from __future__ import annotations

import numpy as np

from ...kernels import get_engine
from ...telemetry.spans import traced
from .levels import Cart3DLevel
from .residual import residual, spectral_radius

#: Jameson's 5-stage steady-state coefficients.
RK_COEFFS = (0.25, 1.0 / 6.0, 0.375, 0.5, 1.0)


def local_time_step(level: Cart3DLevel, q: np.ndarray, cfl: float) -> np.ndarray:
    lam = spectral_radius(level, q)
    return cfl * level.vol / np.maximum(lam, 1e-300)


@traced("cart3d.rk", cat="solver")
def rk_smooth(
    level: Cart3DLevel,
    q: np.ndarray,
    qinf: np.ndarray,
    forcing: np.ndarray | None = None,
    cfl: float = 2.0,
    flux: str = "vanleer",
    order2: bool = False,
    grad_setup=None,
    nsteps: int = 1,
) -> np.ndarray:
    """``nsteps`` RK5 steps of ``dq/dt = -(R(q) - forcing)/V``.

    Returns the updated state; the input array is not modified.  Stages
    that would produce negative density or pressure are damped (the
    standard robustness guard for strong startup transients).
    """
    from ..gas import check_physical

    engine = get_engine()
    q = q.copy()
    for _ in range(nsteps):
        dt = local_time_step(level, q, cfl)
        dt_over_vol = dt / level.vol
        q0 = q
        for alpha in RK_COEFFS:
            r = residual(level, q, qinf, flux=flux, order2=order2,
                         grad_setup=grad_setup)
            if forcing is not None:
                r = r - forcing
            cand = engine.rk_update(q0, alpha * dt_over_vol, r)
            if not check_physical(cand):
                # halve the step until physical (rarely more than once)
                scale = 0.5
                for _ in range(6):
                    cand = engine.rk_update(q0, scale * alpha * dt_over_vol, r)
                    if check_physical(cand):
                        break
                    scale *= 0.5
                else:
                    raise FloatingPointError(
                        "RK stage unrecoverable: negative density/pressure"
                    )
            q = cand
    return q


def residual_norm(level: Cart3DLevel, q: np.ndarray, qinf: np.ndarray,
                  flux: str = "vanleer", order2: bool = False,
                  grad_setup=None) -> float:
    """Volume-scaled L2 norm of the density-equation residual."""
    r = residual(level, q, qinf, flux=flux, order2=order2,
                 grad_setup=grad_setup)
    return float(np.sqrt(np.mean((r[:, 0] / level.vol) ** 2)))
