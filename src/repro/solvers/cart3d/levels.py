"""Multigrid level construction for the Cart3D-style Euler solver.

Each level bundles the flow-cell view of one mesh in the SFC-coarsened
hierarchy (paper fig. 11): open volumes, interior faces remapped to
flow-cell indices with signed area normals, wall faces (against solid
cells), farfield faces (domain boundary), and the fine->coarse transfer
map restricted to flow cells.

Coarse-level classifications are *aggregated* from the fine level rather
than re-sampled from the geometry, so every fine flow cell has a flow
parent — the transfer operators are total functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...mesh.cartesian import (
    CartesianMesh,
    CutCellMesh,
    adapt_to_geometry,
    aggregate_classification,
    build_cutcell_mesh,
    classify_cells,
    sfc_coarsen,
)
from ...mesh.cartesian.geometry import ImplicitSolid


@dataclass(frozen=True)
class Cart3DLevel:
    """Flow-cell-indexed geometry of one multigrid level."""

    cut: CutCellMesh
    vol: np.ndarray  # (nflow,) open volumes
    face_left: np.ndarray  # flow indices
    face_right: np.ndarray
    face_normal: np.ndarray  # (nface, 3) signed area, left -> right
    wall_cell: np.ndarray  # flow indices
    wall_normal: np.ndarray  # (nwall, 3) outward (into the body)
    far_cell: np.ndarray  # flow indices
    far_normal: np.ndarray  # (nfar, 3) outward (out of the domain)

    @property
    def nflow(self) -> int:
        return len(self.vol)

    @property
    def nfaces(self) -> int:
        return len(self.face_left)

    def spectral_area(self) -> np.ndarray:
        """Per-cell accumulated face area (for local time steps)."""
        area = np.zeros(self.nflow, dtype=np.float64)
        a = np.linalg.norm(self.face_normal, axis=1)
        np.add.at(area, self.face_left, a)
        np.add.at(area, self.face_right, a)
        np.add.at(area, self.wall_cell, np.linalg.norm(self.wall_normal, axis=1))
        np.add.at(area, self.far_cell, np.linalg.norm(self.far_normal, axis=1))
        return area


def _axis_normal(axis: np.ndarray, area: np.ndarray, sign=None) -> np.ndarray:
    out = np.zeros((len(axis), 3), dtype=np.float64)
    s = np.ones(len(axis), dtype=np.float64) if sign is None else np.asarray(sign, dtype=float)
    out[np.arange(len(axis)), axis] = s * area
    return out


def _level_from_cut(cut: CutCellMesh) -> Cart3DLevel:
    nfull = cut.mesh.ncells
    flow_of = np.full(nfull, -1, dtype=np.int64)
    flow_of[cut.flow_cells] = np.arange(cut.nflow)
    faces = cut.interior
    return Cart3DLevel(
        cut=cut,
        vol=cut.flow_volumes(),
        face_left=flow_of[faces.left],
        face_right=flow_of[faces.right],
        face_normal=_axis_normal(faces.axis, faces.area),
        wall_cell=flow_of[cut.wall_cell],
        wall_normal=_axis_normal(cut.wall_axis, cut.wall_area, cut.wall_sign),
        far_cell=flow_of[faces.bcell],
        far_normal=_axis_normal(faces.baxis, faces.barea, faces.bsign),
    )


@dataclass(frozen=True)
class TransferOp:
    """Fine-flow -> coarse-flow restriction/prolongation maps."""

    parent: np.ndarray  # (nflow_fine,) coarse flow index
    nflow_coarse: int

    def restrict_solution(self, q: np.ndarray, vol_f: np.ndarray,
                          vol_c: np.ndarray) -> np.ndarray:
        out = np.zeros((self.nflow_coarse, q.shape[1]), dtype=np.float64)
        np.add.at(out, self.parent, q * vol_f[:, None])
        return out / vol_c[:, None]

    def restrict_residual(self, r: np.ndarray) -> np.ndarray:
        out = np.zeros((self.nflow_coarse, r.shape[1]), dtype=np.float64)
        np.add.at(out, self.parent, r)
        return out

    def prolong(self, dq_c: np.ndarray) -> np.ndarray:
        return dq_c[self.parent]


def build_levels(
    solid: ImplicitSolid,
    mesh: CartesianMesh | None = None,
    dim: int = 3,
    base_level: int = 3,
    max_level: int = 6,
    mg_levels: int = 4,
    nsample: int = 2,
    curve: str = "hilbert",
) -> tuple[list, list]:
    """Build the flow-level hierarchy: ([Cart3DLevel fine->coarse],
    [TransferOp between consecutive levels])."""
    if mg_levels < 1:
        raise ValueError("mg_levels must be >= 1")
    if mesh is None:
        mesh, _ = adapt_to_geometry(
            solid, dim=dim, base_level=base_level, max_level=max_level,
            curve=curve,
        )
    cls = classify_cells(mesh, solid, nsample=nsample)
    cut = build_cutcell_mesh(mesh, solid, classification=cls)
    levels = [_level_from_cut(cut)]
    transfers = []
    fine_mesh, fine_cls = mesh, cls
    for _ in range(mg_levels - 1):
        coarse_mesh, parent_of = sfc_coarsen(fine_mesh)
        if coarse_mesh.ncells >= fine_mesh.ncells:
            break
        coarse_cls = aggregate_classification(
            fine_cls, fine_mesh.volumes(), parent_of, coarse_mesh.ncells
        )
        coarse_cut = build_cutcell_mesh(
            coarse_mesh, solid, classification=coarse_cls
        )
        coarse_level = _level_from_cut(coarse_cut)

        # fine flow -> coarse flow map
        fine_cut = levels[-1].cut
        coarse_flow_of = np.full(coarse_mesh.ncells, -1, dtype=np.int64)
        coarse_flow_of[coarse_cut.flow_cells] = np.arange(coarse_cut.nflow)
        parent_flow = coarse_flow_of[parent_of[fine_cut.flow_cells]]
        if (parent_flow < 0).any():
            raise RuntimeError("fine flow cell lost its coarse parent")
        transfers.append(
            TransferOp(parent=parent_flow, nflow_coarse=coarse_cut.nflow)
        )
        levels.append(coarse_level)
        fine_mesh, fine_cls = coarse_mesh, coarse_cls
    return levels, transfers
