"""FAS multigrid cycles for the Cart3D-style solver.

Cart3D uses "the same multigrid cycling strategies as NSU3D" (paper
section V, fig. 4): V-cycles, and the preferred W-cycles that revisit
coarse levels 2^(l-1) times per fine-grid visit.  Because the equations
are nonlinear, the Full Approximation Scheme is used: each coarse level
solves its own nonlinear problem with a forcing term

    f_c = R_c(I q_f) - I (R_f(q_f) - f_f)

so that at convergence the coarse correction vanishes.  Solution
restriction is volume-weighted, residual restriction is a plain sum over
children, prolongation is injection along the fine-to-coarse map —
exactly the transfers the SFC hierarchy provides.
"""

from __future__ import annotations

import numpy as np

from ...telemetry.spans import span as _span
from .rk import rk_smooth


def fas_cycle(
    levels: list,
    transfers: list,
    q: np.ndarray,
    qinf: np.ndarray,
    l: int = 0,
    forcing: np.ndarray | None = None,
    cycle: str = "W",
    nu1: int = 1,
    nu2: int = 1,
    cfl: float = 2.0,
    coarse_cfl: float = 1.5,
    flux: str = "vanleer",
    order2: bool = False,
    grad_setups: list | None = None,
) -> np.ndarray:
    """One multigrid cycle starting at level ``l``; returns updated q."""
    if cycle not in ("V", "W"):
        raise ValueError("cycle must be 'V' or 'W'")
    with _span("cart3d.mg_level", cat="solver", level=l):
        return _fas_level(
            levels, transfers, q, qinf, l=l, forcing=forcing, cycle=cycle,
            nu1=nu1, nu2=nu2, cfl=cfl, coarse_cfl=coarse_cfl, flux=flux,
            order2=order2, grad_setups=grad_setups,
        )


def _fas_level(
    levels, transfers, q, qinf, l, forcing, cycle, nu1, nu2, cfl,
    coarse_cfl, flux, order2, grad_setups,
) -> np.ndarray:
    level = levels[l]
    this_cfl = cfl if l == 0 else coarse_cfl
    use_order2 = order2 and l == 0  # coarse levels run first order
    gs = grad_setups[l] if (grad_setups and use_order2) else None

    q = rk_smooth(
        level, q, qinf, forcing=forcing, cfl=this_cfl, flux=flux,
        order2=use_order2, grad_setup=gs, nsteps=nu1,
    )

    if l + 1 < len(levels):
        from .residual import residual

        t = transfers[l]
        coarse = levels[l + 1]
        q_c0 = t.restrict_solution(q, level.vol, coarse.vol)
        r_f = residual(level, q, qinf, flux=flux, order2=use_order2,
                       grad_setup=gs)
        if forcing is not None:
            r_f = r_f - forcing
        f_c = residual(coarse, q_c0, qinf, flux=flux) - t.restrict_residual(r_f)

        q_c = q_c0.copy()
        visits = 2 if (cycle == "W" and l + 2 < len(levels)) else 1
        for _ in range(visits):
            q_c = fas_cycle(
                levels, transfers, q_c, qinf, l=l + 1, forcing=f_c,
                cycle=cycle, nu1=nu1, nu2=nu2, cfl=cfl,
                coarse_cfl=coarse_cfl, flux=flux, order2=order2,
                grad_setups=grad_setups,
            )
        dq = t.prolong(q_c - q_c0)
        cand = q + dq
        # guard: fall back to a damped correction if prolongation
        # produced an unphysical state (strong startup transients)
        from ..gas import check_physical

        scale = 1.0
        while not check_physical(cand) and scale > 1e-3:
            scale *= 0.5
            cand = q + scale * dq
        if check_physical(cand):
            q = cand

    return rk_smooth(
        level, q, qinf, forcing=forcing, cfl=this_cfl, flux=flux,
        order2=use_order2, grad_setup=gs, nsteps=nu2,
    )
