"""Serial FAS adapter for the Cart3D-style solver.

Cart3D uses "the same multigrid cycling strategies as NSU3D" (paper
section V, fig. 4) — and since this refactor they are literally the
same code: the cycle recursion, FAS forcing and coarse-CFL policy live
in :mod:`repro.runtime.multigrid`, and this module supplies only the
Cart3D-specific :class:`LevelOps`: the 5-stage RK smoother, the
(optionally second-order fine-level) residual, the SFC-hierarchy
transfer operators, and the physicality-guarded damped correction.

Solution restriction is volume-weighted, residual restriction is a
plain sum over children, prolongation is injection along the
fine-to-coarse map — exactly the transfers the SFC hierarchy provides.
"""

from __future__ import annotations

import numpy as np

from ...runtime.multigrid import fas_cycle as _generic_fas_cycle
from ..gas import check_physical
from .residual import residual
from .rk import rk_smooth

#: Coarse levels run first order and need a reduced RK stability margin;
#: 0.75 reproduces the historical hard-coded ``coarse_cfl=1.5`` at the
#: default ``cfl=2.0`` — see the policy in :mod:`repro.runtime.multigrid`.
COARSE_CFL_FRACTION = 0.75


class _SerialCart3DOps:
    """Serial :class:`~repro.runtime.multigrid.LevelOps` over the SFC
    level hierarchy."""

    name = "cart3d"
    coarse_cfl_fraction = COARSE_CFL_FRACTION

    def __init__(self, levels, transfers, qinf, flux, order2, grad_setups):
        self.levels = levels
        self.transfers = transfers
        self.qinf = qinf
        self.flux = flux
        self.order2 = order2
        self.grad_setups = grad_setups
        self.nlevels = len(levels)

    def _order2(self, level: int) -> bool:
        return self.order2 and level == 0  # coarse levels run first order

    def _gs(self, level: int):
        if self.grad_setups and self._order2(level):
            return self.grad_setups[level]
        return None

    def clone(self, q):
        return q.copy()

    def smooth(self, level, q, forcing, cfl, nsteps):
        return rk_smooth(
            self.levels[level], q, self.qinf, forcing=forcing, cfl=cfl,
            flux=self.flux, order2=self._order2(level),
            grad_setup=self._gs(level), nsteps=nsteps,
        )

    def defect(self, level, q, forcing):
        r = residual(
            self.levels[level], q, self.qinf, flux=self.flux,
            order2=self._order2(level), grad_setup=self._gs(level),
        )
        if forcing is not None:
            r = r - forcing
        return r

    def restrict_state(self, level, q):
        return self.transfers[level].restrict_solution(
            q, self.levels[level].vol, self.levels[level + 1].vol
        )

    def coarse_forcing(self, level, q_c0, defect):
        t = self.transfers[level]
        return self.defect(level + 1, q_c0, None) - t.restrict_residual(defect)

    def apply_correction(self, level, q, q_c, q_c0):
        dq = self.transfers[level].prolong(q_c - q_c0)
        cand = q + dq
        # guard: fall back to a damped correction if prolongation
        # produced an unphysical state (strong startup transients)
        scale = 1.0
        while not check_physical(cand) and scale > 1e-3:
            scale *= 0.5
            cand = q + scale * dq
        if check_physical(cand):
            q = cand
        return q


def fas_cycle(
    levels: list,
    transfers: list,
    q: np.ndarray,
    qinf: np.ndarray,
    l: int = 0,
    forcing: np.ndarray | None = None,
    cycle: str = "W",
    nu1: int = 1,
    nu2: int = 1,
    cfl: float = 2.0,
    coarse_cfl: float | None = None,
    flux: str = "vanleer",
    order2: bool = False,
    grad_setups: list | None = None,
) -> np.ndarray:
    """One multigrid cycle starting at level ``l``; returns updated q.

    ``coarse_cfl`` now defaults to ``None`` — the unified policy
    (``COARSE_CFL_FRACTION * cfl``) reproduces the historical hard-coded
    1.5 at the default ``cfl=2.0``; pass ``coarse_cfl=1.5`` explicitly
    to pin the old constant at other fine-level CFLs.
    """
    ops = _SerialCart3DOps(levels, transfers, qinf, flux, order2,
                           grad_setups)
    return _generic_fas_cycle(
        ops, q, level=l, forcing=forcing, cycle=cycle, nu1=nu1, nu2=nu2,
        cfl=cfl, coarse_cfl=coarse_cfl,
    )
