"""The kernel-engine contract and the dispatch seam.

:class:`KernelEngine` is the runtime-checkable protocol every engine
implements: the six hot primitives the solvers dispatch through —
scatter accumulation, Euler-Jacobian block assembly (single and
per-edge-pair), dense block solves (one-shot and frozen/factored),
grouped block-tridiagonal Thomas sweeps, and the RK stage update.

Dispatch is ambient: the solver modules call :func:`get_engine` at their
hot sites, and the facades (serial solvers, the ``SolverKernels``
adapters, the case runner) activate their configured engine around each
cycle with :func:`use_engine`.  The default — with nothing activated —
is the reference numpy engine, so every historical entry point keeps its
bitwise behavior.  The active engine rides a :class:`contextvars.
ContextVar`, which makes the selection thread-local-by-default (SimMPI
rank threads inherit a copy of the context) and safe to nest.

:func:`make_engine` turns a :class:`~repro.kernels.config.KernelConfig`
(or bare engine name) into an engine instance; ``"numba"`` degrades to
``"batched"`` with a :class:`RuntimeWarning` when numba is absent.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

from .batched import BatchedEngine
from .config import KernelConfig
from .numpy_engine import NumpyEngine


class BlockFactor(Protocol):
    """A frozen, reusable factorization of point-implicit diagonals."""

    def solve(self, rhs: np.ndarray) -> np.ndarray: ...


@runtime_checkable
class KernelEngine(Protocol):
    """The six hot primitives every kernel engine provides.

    ``scatter_add`` mutates ``out`` in place (the accumulation pattern
    behind residuals, gradients and the implicit diagonal); everything
    else is pure.  ``thomas`` takes a list of ``(lower, diag, upper,
    rhs)`` block-tridiagonal groups — one per line-length class — and
    returns their solutions in order, which is the seam that lets the
    batched engine fuse groups into padded slabs.
    """

    name: str

    def scatter_add(
        self, out: np.ndarray, idx: np.ndarray, contrib: np.ndarray
    ) -> None: ...

    def euler_jacobian(
        self, q: np.ndarray, normal: np.ndarray
    ) -> np.ndarray: ...

    def edge_jacobians(
        self, qa: np.ndarray, qb: np.ndarray, normal: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def block_solve(
        self, diag: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray: ...

    def block_factor(self, diag: np.ndarray) -> BlockFactor: ...

    def thomas(self, systems: list) -> list: ...

    def rk_update(
        self, q0: np.ndarray, scale: np.ndarray, r: np.ndarray
    ) -> np.ndarray: ...


#: The reference engine — the ambient default at every dispatch site.
_REFERENCE = NumpyEngine()

_ACTIVE: ContextVar[Any] = ContextVar("repro_kernel_engine", default=None)


def get_engine() -> KernelEngine:
    """The engine active in this context (reference engine by default)."""
    engine = _ACTIVE.get()
    return engine if engine is not None else _REFERENCE


@contextmanager
def use_engine(engine: KernelEngine | None) -> Iterator[KernelEngine]:
    """Activate ``engine`` for the dynamic extent of the ``with`` block.

    ``None`` re-activates the reference engine (useful for pinning a
    bit-exact region inside a batched solve).
    """
    token = _ACTIVE.set(engine)
    try:
        yield engine if engine is not None else _REFERENCE
    finally:
        _ACTIVE.reset(token)


def make_engine(
    config: KernelConfig | str | None = None,
) -> KernelEngine:
    """Build the engine a :class:`KernelConfig` (or bare name) selects.

    ``"numba"`` is behind a soft import: when numba is missing the call
    warns :class:`RuntimeWarning` and returns the batched engine built
    from the same knobs, so configured campaigns run everywhere.
    """
    if config is None:
        config = KernelConfig()
    elif isinstance(config, str):
        config = KernelConfig(engine=config)
    if config.engine == "numpy":
        return _REFERENCE
    if config.engine == "batched":
        return BatchedEngine(block_size=config.resolved_block_size)
    from .numba_engine import NumbaEngine, load_numba

    try:
        load_numba()
    except ImportError:
        warnings.warn(
            "engine='numba' requested but numba is not importable "
            "(install the repro[kernels] extra); degrading to the "
            "batched engine",
            RuntimeWarning,
            stacklevel=2,
        )
        return BatchedEngine(block_size=config.resolved_block_size)
    return NumbaEngine(
        block_size=config.resolved_block_size,
        parallel=config.parallel,
        fastmath=config.fastmath,
    )
