"""The batched kernel engine: loop-free rewrites of the hot kernels.

Three restructurings, each measured against the reference engine on
production-sized meshes (``benchmarks/bench_kernel_engines.py``):

* **Scatter accumulation via bincount** — ``np.add.at`` is the single
  hottest primitive in both solvers (it dominates residual assembly,
  gradient accumulation and the implicit diagonal).  Summing per
  ``(point, column)`` bin with ``np.bincount`` performs the same
  additions in the same index order ~2x faster.
* **Fused Thomas slabs** — the reference engine runs one block-Thomas
  recursion per line-length group.  Fusing groups of similar length
  into one padded slab (identity diagonal, zero couplings and zero RHS
  beyond each line's real length — provably inert stations) cuts the
  number of Python-level recursion steps and batches the per-station
  ``np.linalg.solve`` over every line at once: the paper's "sets of 64
  lines of similar length, over which vectorization may then take
  place".
* **Stacked block assembly and prefactored diagonals** — the two edge
  endpoint Jacobians assemble in one stacked pass, and frozen
  point-implicit diagonals are inverted once per smoothing step instead
  of re-factored per stage (the three-stage recursion reuses the same
  blocks).

Everything else intentionally reuses the reference implementation: the
row-filled Euler Jacobian is constant-bound (3x3) and already vectorized
over points — profiling showed the broadcast rewrite *slower*, so the
fast path keeps the faster form rather than the prettier one.

Results agree with the reference engine to the 1e-10 parity window
(scatter sums are reassociated against non-zero accumulators, so
agreement is to rounding, not bitwise).
"""

from __future__ import annotations

import numpy as np

from .config import DEFAULT_BLOCK_SIZE
from .numpy_engine import block_thomas, euler_jacobian


class _PrefactoredDiagonal:
    """Frozen-operator point solves with the inverse precomputed once;
    each stage application is a batched matmul instead of a fresh LU."""

    def __init__(self, diag: np.ndarray):
        self._inv = np.linalg.inv(diag)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.einsum("nab,nb->na", self._inv, rhs)


def _fused_slab(systems: list) -> list:
    """Solve several block-tridiagonal groups as one padded slab.

    Lines shorter than the slab length are padded at the *end* with an
    identity diagonal, zero sub/super-couplings and zero RHS: the
    forward recursion then carries ``cprime = dprime = 0`` through every
    padded station, so back-substitution leaves the real stations'
    results exactly as an unpadded solve would (verified by the parity
    suite down to bitwise agreement per line).
    """
    if len(systems) == 1:
        lower, diag, upper, rhs = systems[0]
        return [block_thomas(lower, diag, upper, rhs)]
    k = systems[0][1].shape[2]
    lengths = [s[1].shape[1] for s in systems]
    counts = [s[1].shape[0] for s in systems]
    m_max = max(lengths)
    total = sum(counts)
    lower = np.zeros((total, m_max - 1, k, k), dtype=np.float64)
    diag = np.zeros((total, m_max, k, k), dtype=np.float64)
    diag[:] = np.eye(k, dtype=np.float64)
    upper = np.zeros((total, m_max - 1, k, k), dtype=np.float64)
    rhs = np.zeros((total, m_max, k), dtype=np.float64)
    row = 0
    for (lo, d, up, b), m, count in zip(systems, lengths, counts):
        rows = slice(row, row + count)
        diag[rows, :m] = d
        rhs[rows, :m] = b
        if m > 1:
            lower[rows, : m - 1] = lo
            upper[rows, : m - 1] = up
        row += count
    out = block_thomas(lower, diag, upper, rhs)
    solutions = []
    row = 0
    for m, count in zip(lengths, counts):
        solutions.append(out[row:row + count, :m])
        row += count
    return solutions


class BatchedEngine:
    """The loop-free :class:`~repro.kernels.engine.KernelEngine`."""

    name = "batched"

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE):
        self.block_size = int(block_size)

    def scatter_add(
        self, out: np.ndarray, idx: np.ndarray, contrib: np.ndarray
    ) -> None:
        idx = np.asarray(idx)
        m = idx.shape[0]
        if m == 0:
            return
        tail = out.shape[1:]
        contrib = np.broadcast_to(
            np.asarray(contrib, dtype=np.float64), (m,) + tail
        )
        n = out.shape[0]
        if not tail:
            out += np.bincount(idx, weights=contrib, minlength=n)
            return
        width = 1
        for extent in tail:
            width *= extent
        flat = contrib.reshape(m, width)
        if width <= 8:
            # narrow contributions (state vectors, gradients): one
            # bincount per column beats building the fused key array
            acc = np.empty((width, n), dtype=np.float64)
            for j in range(width):
                acc[j] = np.bincount(idx, weights=flat[:, j], minlength=n)
            out += acc.T.reshape(out.shape)
            return
        # wide contributions (k x k Jacobian blocks): fuse (point,
        # column) into one key stream so a single bincount pass covers
        # the whole block
        keys = idx.astype(np.int64)[:, None] * np.int64(width) + np.arange(
            width, dtype=np.int64
        )[None, :]
        acc = np.bincount(
            keys.ravel(),
            weights=flat.ravel(),
            minlength=n * width,
        )
        out += acc.reshape(out.shape)

    def euler_jacobian(
        self, q: np.ndarray, normal: np.ndarray
    ) -> np.ndarray:
        return euler_jacobian(q, normal)

    def edge_jacobians(
        self, qa: np.ndarray, qb: np.ndarray, normal: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # one stacked assembly pass over both endpoints: every
        # elementwise op runs once over 2E rows instead of twice over E
        nedges = len(qa)
        stacked = euler_jacobian(
            np.concatenate([qa, qb], axis=0),
            np.concatenate([normal, normal], axis=0),
        )
        return stacked[:nedges], stacked[nedges:]

    def block_solve(self, diag: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(diag, rhs[:, :, None])[:, :, 0]

    def block_factor(self, diag: np.ndarray) -> _PrefactoredDiagonal:
        return _PrefactoredDiagonal(diag)

    def thomas(self, systems: list) -> list:
        if len(systems) <= 1:
            return [
                block_thomas(lower, diag, upper, rhs)
                for lower, diag, upper, rhs in systems
            ]
        # sort by line length so slab padding stays bounded, then pack
        # consecutive groups until each slab holds >= block_size lines
        order = sorted(
            range(len(systems)), key=lambda i: -systems[i][1].shape[1]
        )
        slabs: list[list[int]] = [[]]
        lines_in_slab = 0
        for index in order:
            slabs[-1].append(index)
            lines_in_slab += systems[index][1].shape[0]
            if lines_in_slab >= self.block_size:
                slabs.append([])
                lines_in_slab = 0
        if not slabs[-1]:
            slabs.pop()
        solutions: list = [None] * len(systems)
        for slab in slabs:
            for index, solution in zip(
                slab, _fused_slab([systems[i] for i in slab])
            ):
                solutions[index] = solution
        return solutions

    def rk_update(
        self, q0: np.ndarray, scale: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        return q0 - scale[:, None] * r
