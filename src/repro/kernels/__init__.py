"""Kernel engines: one contract, three implementations (PR 9).

The hot numerical kernels of both solvers — scatter accumulation, 6x6
block assembly and solves, batched line-tridiagonal sweeps, RK stage
updates — dispatch through a :class:`KernelEngine` selected by a frozen
:class:`KernelConfig`, the same shape as the runtime's backend
selection.  ``"numpy"`` is the bit-compatible reference, ``"batched"``
the loop-free fast path, ``"numba"`` the optional JIT tier (soft
import, degrades to batched).  See DESIGN.md section 9 for the
contract: parity policy, the ambient-dispatch seam, and why result
cache keys exclude the engine.
"""

from .config import (
    DEFAULT_BLOCK_SIZE,
    ENGINES,
    KernelConfig,
    resolve_kernel_config,
)
from .engine import (
    BlockFactor,
    KernelEngine,
    get_engine,
    make_engine,
    use_engine,
)
from .batched import BatchedEngine
from .numpy_engine import NumpyEngine

__all__ = [
    "BatchedEngine",
    "BlockFactor",
    "DEFAULT_BLOCK_SIZE",
    "ENGINES",
    "KernelConfig",
    "KernelEngine",
    "NumpyEngine",
    "get_engine",
    "make_engine",
    "resolve_kernel_config",
    "use_engine",
]
