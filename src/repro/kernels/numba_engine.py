"""Optional numba-compiled twins of the scatter/update kernels.

The engine is a :class:`~repro.kernels.batched.BatchedEngine` whose two
memory-bound primitives — scatter accumulation and the RK stage update —
are replaced by ``@njit(cache=True)`` loops (optionally ``parallel=True``
with ``prange`` and ``fastmath=True``).  The linear-algebra kernels
(block solves, Thomas slabs) stay on the batched numpy path: they spend
their time inside LAPACK already, where a JIT adds nothing.

numba is an *optional* dependency (the ``repro[kernels]`` extra).  The
import is soft: :func:`~repro.kernels.engine.make_engine` calls
:func:`load_numba` and degrades to the batched engine with a
:class:`RuntimeWarning` when it raises — campaigns configured with
``engine="numba"`` still run everywhere, just without the JIT.
Compiled dispatchers are cached per ``(parallel, fastmath)`` in a
module-level table, never on the engine instance, so engine objects
stay picklable and travel to process workers inside ``WorkerSpec``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .batched import BatchedEngine
from .config import DEFAULT_BLOCK_SIZE


def load_numba() -> Any:
    """Import numba (the soft-import seam the fallback tests patch)."""
    import numba

    return numba


#: Compiled kernel tables keyed by (parallel, fastmath).
_COMPILED: dict = {}


def _kernels(parallel: bool, fastmath: bool) -> dict:
    """Compile (or fetch) the jitted twins for one knob combination."""
    key = (parallel, fastmath)
    table = _COMPILED.get(key)
    if table is not None:
        return table
    numba = load_numba()
    njit = numba.njit
    step = numba.prange if parallel else range

    @njit(cache=True, parallel=parallel, fastmath=fastmath)
    def scatter_add_1d(out, idx, contrib):
        for e in range(idx.shape[0]):
            out[idx[e]] += contrib[e]

    @njit(cache=True, parallel=parallel, fastmath=fastmath)
    def scatter_add_2d(out, idx, contrib):
        ncols = out.shape[1]
        for e in range(idx.shape[0]):
            row = idx[e]
            for j in range(ncols):
                out[row, j] += contrib[e, j]

    @njit(cache=True, parallel=parallel, fastmath=fastmath)
    def rk_update(q0, scale, r):
        out = np.empty_like(q0)
        ncols = q0.shape[1]
        for i in step(q0.shape[0]):
            s = scale[i]
            for j in range(ncols):
                out[i, j] = q0[i, j] - s * r[i, j]
        return out

    table = {
        "scatter_add_1d": scatter_add_1d,
        "scatter_add_2d": scatter_add_2d,
        "rk_update": rk_update,
    }
    _COMPILED[key] = table
    return table


class NumbaEngine(BatchedEngine):
    """JIT-compiled :class:`~repro.kernels.engine.KernelEngine`."""

    name = "numba"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        parallel: bool = False,
        fastmath: bool = False,
    ):
        super().__init__(block_size=block_size)
        self.parallel = bool(parallel)
        self.fastmath = bool(fastmath)

    def scatter_add(
        self, out: np.ndarray, idx: np.ndarray, contrib: np.ndarray
    ) -> None:
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        table = _kernels(self.parallel, self.fastmath)
        contrib = np.broadcast_to(
            np.asarray(contrib, dtype=np.float64),
            (idx.shape[0],) + out.shape[1:],
        )
        if out.ndim == 1:
            table["scatter_add_1d"](out, idx, np.ascontiguousarray(contrib))
        elif out.ndim == 2:
            table["scatter_add_2d"](out, idx, np.ascontiguousarray(contrib))
        else:
            # higher-rank blocks (N, j, k): flatten the block axes; the
            # jitted 2-D loop covers every case the solvers emit
            flat = out.reshape(out.shape[0], -1)
            table["scatter_add_2d"](
                flat, idx,
                np.ascontiguousarray(contrib.reshape(idx.shape[0], -1)),
            )

    def rk_update(
        self, q0: np.ndarray, scale: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        table = _kernels(self.parallel, self.fastmath)
        return table["rk_update"](
            np.ascontiguousarray(q0),
            np.ascontiguousarray(scale),
            np.ascontiguousarray(r),
        )
