"""Unified kernel-engine selection (PR 9).

One frozen :class:`KernelConfig` names the implementation of the hot
numerical kernels — the 6x6 block assembly/solves, the batched
line-tridiagonal (Thomas) sweeps, the scatter-accumulations and the RK
stage updates — exactly the way :class:`~repro.runtime.config.
RuntimeConfig` names the execution backend:

* ``"numpy"`` — the reference engine: today's code, extracted verbatim
  and kept bit-compatible.  Every result in the repo reproduces on it.
* ``"batched"`` — loop-free rewrites of the same kernels: stacked
  block-Jacobian assembly, ``bincount``-based scatter accumulation,
  Thomas sweeps fused across line groups of similar length (the paper's
  "sets of 64 lines" strategy, section III), and prefactored
  point-implicit diagonals.  Results agree with ``"numpy"`` to the
  1e-10 parity window pinned by ``tests/test_kernel_engines.py``.
* ``"numba"`` — optional ``@njit`` twins of the scatter/update kernels
  behind a soft import; when numba is absent the engine degrades to
  ``"batched"`` with a :class:`RuntimeWarning`.

Old bare-keyword call sites fold into a config through
:func:`resolve_kernel_config` under a ``DeprecationWarning`` —
``engine=`` alone stays blessed shorthand, mirroring ``backend=``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..errors import ConfigurationError

#: The blessed engine names, in documentation order.
ENGINES = ("numpy", "batched", "numba")

#: Default line-fusion batch width (the paper's "sets of 64 lines").
DEFAULT_BLOCK_SIZE = 64


@dataclass(frozen=True)
class KernelConfig:
    """How the hot kernels execute — engine plus its tuning knobs, in
    one immutable (and picklable) value.

    ``block_size`` is the line-fusion batch width: the batched/numba
    engines concatenate sorted line groups into fused Thomas slabs of at
    least this many lines (padding short lines within a slab), bounding
    per-group dispatch overhead the way the paper batches "sets of 64
    lines of similar length".  ``parallel`` and ``fastmath`` configure
    numba's ``@njit`` compilation and are meaningless (and rejected) for
    the other engines; the reference ``"numpy"`` engine takes no tuning
    knobs at all.
    """

    engine: str = "numpy"
    parallel: bool = False
    fastmath: bool = False
    block_size: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown kernel engine {self.engine!r}; choose one of "
                f"{ENGINES}"
            )
        if self.engine != "numba" and (self.parallel or self.fastmath):
            knobs = [
                k for k, v in (
                    ("parallel", self.parallel), ("fastmath", self.fastmath)
                ) if v
            ]
            raise ConfigurationError(
                f"{knobs} configure numba's @njit compilation and mean "
                f"nothing for engine={self.engine!r}; drop them or use "
                "engine='numba'"
            )
        if self.block_size is not None:
            if self.engine == "numpy":
                raise ConfigurationError(
                    "block_size tunes the batched/numba line fusion; the "
                    "reference 'numpy' engine takes no tuning knobs"
                )
            if self.block_size < 1:
                raise ConfigurationError("block_size must be >= 1")

    @property
    def resolved_block_size(self) -> int:
        """The effective line-fusion width (default 64)."""
        return (
            self.block_size if self.block_size is not None
            else DEFAULT_BLOCK_SIZE
        )


def resolve_kernel_config(
    config: KernelConfig | None,
    engine: str | None = None,
    *,
    where: str,
    stacklevel: int = 3,
    **legacy: bool | int | None,
) -> KernelConfig:
    """Merge the blessed (``kernel_config``/``engine``) and deprecated
    (bare keyword) call styles into one :class:`KernelConfig`.

    ``legacy`` holds the historical keywords (``parallel``,
    ``fastmath``, ``block_size``) with ``None`` meaning *not passed*.
    Passing any of them warns ``DeprecationWarning``; combining them
    with ``kernel_config=`` is an error (two sources of truth).
    ``engine=`` alone is blessed shorthand for
    ``KernelConfig(engine=...)`` — mirroring ``backend=`` in
    :func:`~repro.runtime.config.resolve_config`.
    """
    given = {k: v for k, v in legacy.items() if v is not None}
    if given:
        if config is not None:
            raise ConfigurationError(
                f"{where}: pass either kernel_config=KernelConfig(...) "
                f"or the deprecated {sorted(given)} keyword(s), not both"
            )
        warnings.warn(
            f"{where}: the {sorted(given)} keyword(s) are deprecated; "
            f"pass kernel_config=KernelConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return KernelConfig(engine=engine or "numpy", **given)
    if config is None:
        return KernelConfig(engine=engine or "numpy")
    if engine is not None and engine != config.engine:
        raise ConfigurationError(
            f"{where}: engine={engine!r} conflicts with "
            f"kernel_config.engine={config.engine!r}"
        )
    return config
