"""The reference kernel engine: today's numpy code, extracted verbatim.

Every kernel here is the exact implementation the solver modules ran
before the engine layer existed — ``np.add.at`` scatter accumulation,
the row-filled analytic Euler Jacobian, per-group block-Thomas
recursions, repeated ``np.linalg.solve`` on frozen diagonals.  It is the
bit-compatibility anchor: the parity matrix in
``tests/test_kernel_engines.py`` pins every other engine against it, and
the seed test suite's pinned histories reproduce on it exactly.

Being the reference, this module is the one engine exempt from lint
rule R013 (no per-point Python loops in engine modules): its loops *are*
the specification the fast engines must match.
"""

from __future__ import annotations

import numpy as np


def euler_jacobian(q: np.ndarray, normal: np.ndarray) -> np.ndarray:
    """Analytic flux Jacobian ``A . S`` for conservative variables.

    ``q`` is (N, nvar >= 5); ``normal`` (N, 3) carries the face area.
    Returns (N, nvar, nvar); the SA row/column holds passive advection.
    Extracted from ``solvers/nsu3d/jacobians.py`` — the row fills are
    constant-bound (3x3), already vectorized over N, and measured
    *faster* than the broadcast rewrite at production sizes.
    """
    from ..solvers.gas import GAMMA, GM1, conservative_to_primitive

    q = np.asarray(q, dtype=np.float64)
    nvar = q.shape[1]
    prim = conservative_to_primitive(q)
    u = prim[:, 1:4]
    n = np.asarray(normal, dtype=np.float64)
    vn = np.einsum("nd,nd->n", u, n)  # u . S (area-weighted)
    phi = 0.5 * GM1 * np.sum(u * u, axis=1)
    h = (q[:, 4] + prim[:, 4]) / prim[:, 0]

    a = np.zeros((len(q), nvar, nvar), dtype=np.float64)
    a[:, 0, 1:4] = n
    for i in range(3):
        a[:, 1 + i, 0] = phi * n[:, i] - u[:, i] * vn
        for j in range(3):
            a[:, 1 + i, 1 + j] = (
                u[:, i] * n[:, j] - GM1 * u[:, j] * n[:, i]
            )
        a[:, 1 + i, 1 + i] += vn
        a[:, 1 + i, 4] = GM1 * n[:, i]
    a[:, 4, 0] = vn * (phi - h)
    a[:, 4, 1:4] = h[:, None] * n - GM1 * u * vn[:, None]
    a[:, 4, 4] = GAMMA * vn
    if nvar > 5:
        # passive advection of rho nu_hat; cross-coupling to the mean
        # flow is frozen (standard loosely-coupled Jacobian)
        a[:, 5, 5] = vn
    return a


def block_thomas(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Batched block-tridiagonal LU solve (the reference recursion).

    Shapes: diag (L, m, k, k); lower/upper (L, m-1, k, k); rhs (L, m, k).
    Vectorized across the L lines of the batch; the recursion runs over
    the m stations.  Extracted from ``solvers/nsu3d/linesolve.py``.
    """
    L, m, k, _ = diag.shape
    cprime = np.empty((L, max(m - 1, 0), k, k), dtype=np.float64)
    dprime = np.empty((L, m, k), dtype=np.float64)
    dmat = diag[:, 0]
    if m > 1:
        cprime[:, 0] = np.linalg.solve(dmat, upper[:, 0])
    dprime[:, 0] = np.linalg.solve(dmat, rhs[:, 0][..., None])[..., 0]
    for i in range(1, m):
        dmat = diag[:, i] - np.einsum(
            "lab,lbc->lac", lower[:, i - 1], cprime[:, i - 1]
        )
        if i < m - 1:
            cprime[:, i] = np.linalg.solve(dmat, upper[:, i])
        rhs_i = rhs[:, i] - np.einsum(
            "lab,lb->la", lower[:, i - 1], dprime[:, i - 1]
        )
        dprime[:, i] = np.linalg.solve(dmat, rhs_i[..., None])[..., 0]
    out = np.empty((L, m, k), dtype=np.float64)
    out[:, m - 1] = dprime[:, m - 1]
    for i in range(m - 2, -1, -1):
        out[:, i] = dprime[:, i] - np.einsum(
            "lab,lb->la", cprime[:, i], out[:, i + 1]
        )
    return out


class _RepeatedSolveFactor:
    """Frozen-operator point solves, reference style: keep the diagonal
    and call ``np.linalg.solve`` per stage — bitwise what the solvers
    did before factoring existed."""

    def __init__(self, diag: np.ndarray):
        self._diag = diag

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(self._diag, rhs[:, :, None])[:, :, 0]


class NumpyEngine:
    """The reference :class:`~repro.kernels.engine.KernelEngine`."""

    name = "numpy"

    def scatter_add(
        self, out: np.ndarray, idx: np.ndarray, contrib: np.ndarray
    ) -> None:
        np.add.at(out, idx, contrib)

    def euler_jacobian(
        self, q: np.ndarray, normal: np.ndarray
    ) -> np.ndarray:
        return euler_jacobian(q, normal)

    def edge_jacobians(
        self, qa: np.ndarray, qb: np.ndarray, normal: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # two independent calls, exactly the historical evaluation order
        return euler_jacobian(qa, normal), euler_jacobian(qb, normal)

    def block_solve(self, diag: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.linalg.solve(diag, rhs[:, :, None])[:, :, 0]

    def block_factor(self, diag: np.ndarray) -> _RepeatedSolveFactor:
        return _RepeatedSolveFactor(diag)

    def thomas(self, systems: list) -> list:
        return [
            block_thomas(lower, diag, upper, rhs)
            for lower, diag, upper, rhs in systems
        ]

    def rk_update(
        self, q0: np.ndarray, scale: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        return q0 - scale[:, None] * r
