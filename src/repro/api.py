"""The blessed entry point: one curated facade over the whole package.

Everything a user of the reproduction needs — geometry builders, the two
solvers behind the unified :class:`~repro.solvers.interface.SolverProtocol`
surface, the parameter-study machinery, the executing fill runtime and
the variable-fidelity workflow — re-exported from one module::

    from repro.api import (
        Cart3DSolver, FillRuntime, Cart3DCaseRunner,
        StudyDefinition, ParameterSpace, Axis,
        build_job_tree, schedule_fill, wing_body,
    )

The facade also owns the *factory* functions
(:func:`make_cart3d_solver` / :func:`make_nsu3d_solver`) through which
all solver construction inside :mod:`repro.database` must go — lint rule
R005 enforces that, so submission, caching and counter wiring stay
uniform no matter which code path builds the solver.

Migration from the historical deep imports:

==============================================  ================================
old call                                        facade call
==============================================  ================================
``repro.solvers.cart3d.Cart3DSolver(...)``      ``repro.api.make_cart3d_solver(...)``
``repro.solvers.nsu3d.NSU3DSolver(...)``        ``repro.api.make_nsu3d_solver(...)``
``solver.ncells`` / ``solver.npoints``          ``solver.size``
``repro.solvers.nsu3d.NSU3DHistory``            ``repro.api.ConvergenceHistory``
``repro.database.runtime.CaseExecutionError``   ``repro.api.CaseExecutionError``
serial loop over ``study.run_case(...)``        ``repro.api.FillRuntime`` /
                                                ``study.fill(...)``
==============================================  ================================

The facade's contract is explicit: ``__api_version__`` states which
surface you are coding against, ``__all__`` is complete (a self-test
asserts every public module attribute is exported and vice versa), and
the remaining blessed-path bypasses warn — constructing a
:class:`FillRuntime` without a :class:`ResultStore` now asks for
``durable=False`` as the documented escape hatch instead of silently
producing an ephemeral campaign.
"""

from __future__ import annotations

from .core.design import DesignHistory, DesignOptimizer, trim_objective
from .core.flightenv import AeroInterpolant, FlightState, fly_through
from .core.workflow import VariableFidelityStudy
from .database import (
    AeroDatabase,
    Axis,
    CampaignCheckpoint,
    Cart3DCaseRunner,
    CaseHandle,
    CaseRecord,
    ChaosPolicy,
    CheckpointState,
    FillEvent,
    FillReport,
    FillRuntime,
    FlowJob,
    GeometryJob,
    JobOutcome,
    ParameterSpace,
    ResultStore,
    SchedulePlan,
    StudyDefinition,
    build_job_tree,
    cross_check_plan,
    meshing_amortization,
    schedule_fill,
    standard_study,
)
from .errors import (
    CampaignAborted,
    CaseExecutionError,
    CaseTimeout,
    CheckpointCorrupt,
    ConfigurationError,
    ExchangeLifecycleError,
    GhostRaceError,
    ReproError,
    RuntimeClosed,
    ServiceOverloaded,
    SolverDivergence,
    WorkerCrash,
)
from .kernels import (
    ENGINES,
    KernelConfig,
    make_engine,
    resolve_kernel_config,
)
from .machine import CPUS_PER_NODE, Columbia, node_slots, vortex_subcluster
from .mesh.cartesian import (
    CartesianMesh,
    Sphere,
    adapt_to_geometry,
    shuttle_stack,
    wing_body,
)
from .mesh.unstructured import HybridMesh, bump_channel, wing_mesh
from .comm import SimMPI
from .perf import fill_summary_table, format_comparison, format_series_table
from .runtime import (
    BACKENDS,
    DistributedDomain,
    DistributedSolveDriver,
    DomainHierarchy,
    DomainSet,
    GhostSanitizer,
    HybridExchanger,
    LevelSpec,
    MetisLinePartitioner,
    Partitioner,
    PlanExchanger,
    ProcessExchanger,
    ProcessPool,
    RuntimeConfig,
    SFCPartitioner,
    build_domain_hierarchy,
    build_domain_set,
    make_exchanger,
)
from .solvers import (
    CaseResult,
    CaseSpec,
    ConvergenceHistory,
    SolverProtocol,
    case_result,
)
from .service import (
    AdmissionController,
    DatabaseService,
    PointQuery,
    QueryResponse,
    ServiceCounters,
    SurrogateConfig,
    TenantQuota,
)
from .solvers.cart3d import Cart3DSolver, ParallelCart3D
from .solvers.nsu3d import NSU3DSolver, ParallelNSU3D
from .telemetry import (
    EpochClock,
    LatencyHistogram,
    Timeline,
    Tracer,
    add_simmpi_trace,
    add_tracer,
    capture,
    chrome_trace,
    get_tracer,
    load_trace,
    merged_fill_timeline,
    metrics,
    set_tracer,
    span,
    traced,
    write_metrics,
    write_trace,
)

#: The facade surface version: bumped when the blessed surface changes
#: shape (new exports, deprecations, contract changes) — code against it
#: with ``assert repro.api.__api_version__ >= "4"``-style checks.
#: 5.0 added the unified distributed-solve runtime surface
#: (``Partitioner``/``DistributedDomain``/``DistributedSolveDriver``,
#: the ``make_parallel_*`` factories and ``SimMPI``).
#: 6.0 added unified backend selection (``RuntimeConfig`` +
#: ``backend="sim" | "hybrid" | "process"`` across ``make_parallel_*``,
#: ``Parallel*`` and ``Cart3DCaseRunner``), the real multi-core
#: ``process`` backend (``ProcessExchanger``/``ProcessPool``) and the
#: ``make_exchanger`` factory; the bare ``overlap``/``charge_compute``/
#: ``sanitize``/``nranks`` keywords are deprecated.
#: 7.0 added the aero-database query service (``DatabaseService``,
#: ``PointQuery``/``QueryResponse``, the ``SurrogateConfig`` surrogate
#: tier, ``AdmissionController``/``TenantQuota`` fair-share admission
#: with the typed ``ServiceOverloaded`` shed error), the awaitable
#: ``CaseHandle`` bridge (``await handle`` / ``result(timeout=...)``)
#: and ``LatencyHistogram``.
#: 8.0 added unified kernel-engine selection (``KernelConfig`` +
#: ``engine="numpy" | "batched" | "numba"`` across the solver
#: factories, ``make_parallel_*``, ``RuntimeConfig.kernels`` and
#: ``Cart3DCaseRunner``) and the ``make_engine`` factory; the bare
#: ``parallel``/``fastmath``/``block_size`` keywords on the solver
#: factories are deprecated spellings of the config fields.
__api_version__ = "8.0"

__all__ = [
    # solvers — unified surface
    "Cart3DSolver",
    "NSU3DSolver",
    "make_cart3d_solver",
    "make_nsu3d_solver",
    "SolverProtocol",
    "ConvergenceHistory",
    "CaseSpec",
    "CaseResult",
    "case_result",
    # distributed-solve runtime (one stack for both solvers)
    "SimMPI",
    "Partitioner",
    "MetisLinePartitioner",
    "SFCPartitioner",
    "DistributedDomain",
    "DomainSet",
    "DomainHierarchy",
    "LevelSpec",
    "build_domain_set",
    "build_domain_hierarchy",
    "DistributedSolveDriver",
    "BACKENDS",
    "RuntimeConfig",
    # kernel engines (one numerical fast path for both solvers)
    "ENGINES",
    "KernelConfig",
    "make_engine",
    "resolve_kernel_config",
    "PlanExchanger",
    "HybridExchanger",
    "ProcessExchanger",
    "ProcessPool",
    "make_exchanger",
    "GhostSanitizer",
    "ParallelNSU3D",
    "ParallelCart3D",
    "make_parallel_nsu3d",
    "make_parallel_cart3d",
    # geometry / meshes
    "Sphere",
    "wing_body",
    "shuttle_stack",
    "adapt_to_geometry",
    "CartesianMesh",
    "HybridMesh",
    "bump_channel",
    "wing_mesh",
    # parameter studies + runtime
    "Axis",
    "ParameterSpace",
    "StudyDefinition",
    "standard_study",
    "FlowJob",
    "GeometryJob",
    "build_job_tree",
    "meshing_amortization",
    "SchedulePlan",
    "schedule_fill",
    "FillRuntime",
    "FillReport",
    "FillEvent",
    "JobOutcome",
    "CaseHandle",
    "Cart3DCaseRunner",
    "ResultStore",
    "cross_check_plan",
    "AeroDatabase",
    "CaseRecord",
    # durability: checkpoint/resume + fault injection
    "CampaignCheckpoint",
    "CheckpointState",
    "ChaosPolicy",
    # the query service (long-running front end over the fill runtime)
    "DatabaseService",
    "PointQuery",
    "QueryResponse",
    "ServiceCounters",
    "SurrogateConfig",
    "AdmissionController",
    "TenantQuota",
    # the rooted error taxonomy (home: repro.errors)
    "ReproError",
    "ConfigurationError",
    "CaseExecutionError",
    "CaseTimeout",
    "CampaignAborted",
    "CheckpointCorrupt",
    "WorkerCrash",
    "SolverDivergence",
    "RuntimeClosed",
    "ServiceOverloaded",
    "ExchangeLifecycleError",
    "GhostRaceError",
    # workflow + envelope
    "VariableFidelityStudy",
    "AeroInterpolant",
    "FlightState",
    "fly_through",
    "DesignOptimizer",
    "DesignHistory",
    "trim_objective",
    # machine + reporting
    "Columbia",
    "vortex_subcluster",
    "CPUS_PER_NODE",
    "node_slots",
    "fill_summary_table",
    "format_series_table",
    "format_comparison",
    # telemetry — spans, timelines, Perfetto export
    "Tracer",
    "EpochClock",
    "LatencyHistogram",
    "get_tracer",
    "set_tracer",
    "span",
    "traced",
    "capture",
    "Timeline",
    "add_tracer",
    "add_simmpi_trace",
    "merged_fill_timeline",
    "chrome_trace",
    "write_trace",
    "load_trace",
    "metrics",
    "write_metrics",
]


def make_cart3d_solver(
    solid,
    mesh: CartesianMesh | None = None,
    *,
    dim: int = 3,
    base_level: int = 3,
    max_level: int = 5,
    mg_levels: int = 4,
    mach: float = 0.5,
    alpha_deg: float = 0.0,
    beta_deg: float = 0.0,
    kernel_config: KernelConfig | None = None,
    engine: str | None = None,
    parallel: bool | None = None,
    fastmath: bool | None = None,
    block_size: int | None = None,
    **kwargs,
) -> Cart3DSolver:
    """Construct the inviscid Cart3D-style solver (the blessed path).

    Thin by design: it exists so every construction site — the fill
    runtime, the workflow, user scripts — goes through one audited
    function, which is what lint rule R005 checks inside
    ``repro.database``.

    Kernel execution is selected by ``kernel_config=KernelConfig(...)``
    (or the ``engine="numpy" | "batched" | "numba"`` shorthand); the
    bare ``parallel``/``fastmath``/``block_size`` keywords are
    deprecated spellings of the config fields.
    """
    kernel_config = resolve_kernel_config(
        kernel_config, engine, where="make_cart3d_solver",
        parallel=parallel, fastmath=fastmath, block_size=block_size,
    )
    return Cart3DSolver(
        solid,
        mesh=mesh,
        dim=dim,
        base_level=base_level,
        max_level=max_level,
        mg_levels=mg_levels,
        mach=mach,
        alpha_deg=alpha_deg,
        beta_deg=beta_deg,
        kernel_config=kernel_config,
        **kwargs,
    )


def make_nsu3d_solver(
    mesh=None,
    *,
    mach: float = 0.75,
    alpha_deg: float = 0.0,
    beta_deg: float = 0.0,
    reynolds: float = 1.0e5,
    mg_levels: int = 4,
    turbulence: bool = True,
    kernel_config: KernelConfig | None = None,
    engine: str | None = None,
    parallel: bool | None = None,
    fastmath: bool | None = None,
    block_size: int | None = None,
    **kwargs,
) -> NSU3DSolver:
    """Construct the high-fidelity NSU3D-style RANS solver.

    Kernel execution is selected exactly like
    :func:`make_cart3d_solver` — ``kernel_config=`` or the ``engine=``
    shorthand, with the bare ``parallel``/``fastmath``/``block_size``
    keywords deprecated.
    """
    kernel_config = resolve_kernel_config(
        kernel_config, engine, where="make_nsu3d_solver",
        parallel=parallel, fastmath=fastmath, block_size=block_size,
    )
    return NSU3DSolver(
        mesh=mesh,
        mach=mach,
        alpha_deg=alpha_deg,
        beta_deg=beta_deg,
        reynolds=reynolds,
        mg_levels=mg_levels,
        turbulence=turbulence,
        kernel_config=kernel_config,
        **kwargs,
    )


def make_parallel_nsu3d(
    solver: NSU3DSolver,
    nparts: int,
    *,
    seed: int = 0,
    config: RuntimeConfig | None = None,
    backend: str | None = None,
    kernel_config: KernelConfig | None = None,
    engine: str | None = None,
    overlap: bool | None = None,
    charge_compute: bool | None = None,
    sanitize: bool | None = None,
) -> ParallelNSU3D:
    """Decompose a serial NSU3D solver for the distributed runtime.

    Execution is selected by ``config=RuntimeConfig(...)`` (or the
    ``backend="sim" | "hybrid" | "process"`` shorthand): call
    ``.solve(ncycles, ...)`` for the config-driven path, or
    ``.run(world, ncycles, ...)`` with your own :class:`SimMPI` world.
    The kernel engine rides along the same way —
    ``kernel_config=KernelConfig(...)`` / the ``engine=`` shorthand /
    ``config.kernels``; when none of them is given the serial solver's
    own engine carries over.  The bare
    ``overlap``/``charge_compute``/``sanitize`` keywords are deprecated
    spellings of the config fields.  The decomposition is
    layout-generic: the solver's ``VariableLayout`` (any ``nvar``)
    carries through every runtime layer, so turbulent (SA, 6-variable)
    solvers decompose exactly like laminar ones — wall distances and
    Green-Gauss gradient surfaces are split per rank, the gradients the
    SA source terms need are completed by halo accumulation, and the
    correction limiter's turbulence reference is allreduced so results
    are partition-independent.
    """
    if kernel_config is not None or engine is not None:
        kernel_config = resolve_kernel_config(
            kernel_config, engine, where="make_parallel_nsu3d"
        )
    return ParallelNSU3D.from_solver(
        solver, nparts, seed=seed, config=config, backend=backend,
        kernel_config=kernel_config, overlap=overlap,
        charge_compute=charge_compute, sanitize=sanitize,
    )


def make_parallel_cart3d(
    solver: Cart3DSolver,
    nparts: int,
    *,
    config: RuntimeConfig | None = None,
    backend: str | None = None,
    kernel_config: KernelConfig | None = None,
    engine: str | None = None,
    overlap: bool | None = None,
    charge_compute: bool | None = None,
    sanitize: bool | None = None,
) -> ParallelCart3D:
    """Decompose a serial Cart3D solver for the distributed runtime.

    SFC-segment partitioning of the whole level hierarchy.  Execution
    is selected by ``config=RuntimeConfig(...)`` (or the
    ``backend="sim" | "hybrid" | "process"`` shorthand): call
    ``.solve(ncycles, ...)`` for the config-driven path, or
    ``.run(world, ncycles, ...)`` with your own :class:`SimMPI` world.
    The kernel engine rides along the same way —
    ``kernel_config=KernelConfig(...)`` / the ``engine=`` shorthand /
    ``config.kernels``; when none of them is given the serial solver's
    own engine carries over.  The bare
    ``overlap``/``charge_compute``/``sanitize`` keywords are deprecated
    spellings of the config fields.
    """
    if kernel_config is not None or engine is not None:
        kernel_config = resolve_kernel_config(
            kernel_config, engine, where="make_parallel_cart3d"
        )
    return ParallelCart3D.from_solver(
        solver, nparts, config=config, backend=backend,
        kernel_config=kernel_config, overlap=overlap,
        charge_compute=charge_compute, sanitize=sanitize,
    )
