"""Paper-scale virtual scalability runs (figures 14-22).

Combines the work models, communication models and the Columbia machine
description into per-cycle times for the paper's exact configurations:
the 72M-point NSU3D case and the 25M-cell Cart3D SSLV case, from 32 to
2016/2008 CPUs, on NUMAlink or InfiniBand, pure MPI or hybrid
MPI/OpenMP, with any number of multigrid levels.

Speedups are computed exactly as the paper does ("assuming a perfect
speedup on 128 CPUs" for NSU3D; on 32 CPUs for Cart3D), and TFLOP/s from
the useful FLOPs per cycle divided by wall time — MADDs counted as two,
as with pfmon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.interconnect import INFINIBAND, NUMALINK4, FabricModel
from ..machine.limits import infiniband_feasible
from ..machine.placement import JobPlacement
from ..machine.topology import CPUS_PER_BRICK, CPUS_PER_NODE
from .commmodel import (
    CommScenario,
    collective_time,
    halo_exchange_time,
    intergrid_transfer_time,
)
from .workmodel import CART3D_WORK, NSU3D_WORK, SolverWorkModel

#: Hybrid thread-serialization overhead: with T OpenMP threads per MPI
#: process, per-cycle compute inflates by ``c (T-1)^2`` (synchronization
#: plus the thread-sequential master-communication phase compounding).
#: Calibrated against figure 15: 0.984 efficiency at 2 threads, 0.872 at
#: 4 threads on NUMAlink.
HYBRID_THREAD_OVERHEAD = 0.0163

#: The paper's benchmark problems.
NSU3D_POINTS_72M = 72.0e6
CART3D_CELLS_25M = 25.0e6


@dataclass
class CycleBreakdown:
    """Per-cycle time decomposition for one configuration."""

    compute: float = 0.0
    halo_comm: float = 0.0
    intergrid_comm: float = 0.0
    collectives: float = 0.0
    useful_flops: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.halo_comm + self.intergrid_comm + \
            self.collectives

    @property
    def comm_fraction(self) -> float:
        t = self.total
        return 0.0 if t == 0 else (t - self.compute) / t


def _scenario(ncpus: int, fabric: FabricModel, omp_threads: int,
              nboxes: int | None, openmp: bool = False) -> CommScenario:
    if nboxes is None:
        nboxes = max(1, -(-ncpus // CPUS_PER_NODE))  # ceil division
    placement = JobPlacement.pack(
        ncpus if ncpus % omp_threads == 0 else ncpus - ncpus % omp_threads,
        omp_threads=omp_threads,
        fabric=fabric,
        nboxes=nboxes,
    )
    return CommScenario(
        fabric=placement.effective_fabric(),
        nboxes=placement.nboxes,
        omp_threads=omp_threads,
        nranks=placement.nranks,
        openmp_global_address=openmp,
        spans_bricks=ncpus > CPUS_PER_BRICK if openmp else False,
    )


def cycle_time(
    nunits: float,
    ncpus: int,
    mg_levels: int = 1,
    fabric: FabricModel = NUMALINK4,
    omp_threads: int = 1,
    work: SolverWorkModel = NSU3D_WORK,
    cycle: str = "W",
    nboxes: int | None = None,
    openmp: bool = False,
    level_offset: int = 0,
) -> CycleBreakdown:
    """Time of one multigrid cycle of ``nunits`` points/cells on
    ``ncpus`` CPUs.

    ``level_offset`` starts the finest level deeper in the hierarchy
    (figure 19 runs the 2nd and 3rd grids *alone*: pass the coarse size
    as ``nunits`` with ``mg_levels=1``).
    """
    if cycle not in ("V", "W"):
        raise ValueError("cycle must be 'V' or 'W'")
    nranks = max(1, ncpus // omp_threads)
    scenario = _scenario(ncpus, fabric, omp_threads, nboxes, openmp)

    out = CycleBreakdown()
    n_l = nunits / work.coarsen_ratio**level_offset
    for level in range(mg_levels):
        visits = 2**level if cycle == "W" else 1
        per_cpu = n_l / ncpus
        per_rank = n_l / nranks
        rate = work.sustained_rate(per_cpu)
        imb = work.imbalance_factor(per_rank)
        hybrid = 1.0 + HYBRID_THREAD_OVERHEAD * (omp_threads - 1) ** 2
        host = scenario.fabric.host_factor(scenario.nboxes)
        out.compute += (
            visits * work.flops_per_unit * per_cpu / rate * imb * hybrid
            * host
        )
        out.useful_flops += visits * work.flops_per_unit * n_l
        out.halo_comm += (
            visits
            * work.exchanges_per_visit
            * halo_exchange_time(per_rank, work, scenario)
        )
        if level + 1 < mg_levels:
            coarse_per_rank = per_rank / work.coarsen_ratio
            out.intergrid_comm += visits * intergrid_transfer_time(
                coarse_per_rank, work, scenario
            )
        out.collectives += visits * collective_time(nranks, scenario)
        n_l /= work.coarsen_ratio
    return out


@dataclass
class ScalingSeries:
    """One curve of a scaling figure."""

    label: str
    cpus: list = field(default_factory=list)
    seconds_per_cycle: list = field(default_factory=list)
    useful_flops: list = field(default_factory=list)

    def speedup(self, base_cpus: int | None = None) -> list:
        """Paper convention: perfect speedup assumed at the first (or
        given) CPU count."""
        base = base_cpus if base_cpus is not None else self.cpus[0]
        i = self.cpus.index(base)
        t0 = self.seconds_per_cycle[i]
        return [base * t0 / t for t in self.seconds_per_cycle]

    def tflops(self) -> list:
        return [
            f / t / 1e12
            for f, t in zip(self.useful_flops, self.seconds_per_cycle)
        ]


def scaling_series(
    label: str,
    nunits: float,
    cpu_counts: list,
    work: SolverWorkModel,
    mg_levels: int = 1,
    fabric: FabricModel = NUMALINK4,
    omp_threads: int = 1,
    cycle: str = "W",
    openmp: bool = False,
    level_offset: int = 0,
    boxes_for: dict | None = None,
) -> ScalingSeries:
    """Sweep CPU counts for one configuration.

    ``boxes_for`` optionally pins the box count per CPU count (the paper
    packs <= 512 CPUs in one box, 508-1000 over two, etc.).
    """
    series = ScalingSeries(label=label)
    for ncpus in cpu_counts:
        nboxes = None if boxes_for is None else boxes_for.get(ncpus)
        b = cycle_time(
            nunits, ncpus, mg_levels=mg_levels, fabric=fabric,
            omp_threads=omp_threads, work=work, cycle=cycle,
            openmp=openmp, level_offset=level_offset, nboxes=nboxes,
        )
        series.cpus.append(ncpus)
        series.seconds_per_cycle.append(b.total)
        series.useful_flops.append(b.useful_flops)
    return series


# -- the paper's configurations ---------------------------------------------------

#: NSU3D runs on 128-2008 CPUs of the Vortex boxes (fig. 14b).
NSU3D_CPU_COUNTS = [128, 256, 502, 1004, 2008]

#: Cart3D runs on 32-2016 CPUs (figs. 20-22).
CART3D_CPU_COUNTS = [32, 64, 128, 256, 496, 508, 688, 1000, 1024, 1524, 2016]


def nsu3d_box_count(ncpus: int) -> int:
    """The paper spreads NSU3D jobs over the four Vortex boxes."""
    return max(1, -(-ncpus // CPUS_PER_NODE))


def infiniband_mpi_feasible(ncpus: int, omp_threads: int = 1,
                            nboxes: int | None = None) -> bool:
    """Whether a configuration exists under the eq. (1) limit (fig. 22's
    InfiniBand curve stops at 1524 CPUs)."""
    if nboxes is None:
        nboxes = nsu3d_box_count(ncpus)
    return infiniband_feasible(ncpus // omp_threads, nboxes)


def project_run_time(
    nunits: float,
    ncpus: int,
    cycles: int,
    mg_levels: int = 6,
    fabric: FabricModel = NUMALINK4,
    omp_threads: int = 1,
    work: SolverWorkModel = NSU3D_WORK,
) -> float:
    """Wall-clock of a full solve (section VI's 'under 30 minutes' and
    the 10^9-point, 4016-CPU projections)."""
    b = cycle_time(
        nunits, ncpus, mg_levels=mg_levels, fabric=fabric,
        omp_threads=omp_threads, work=work,
    )
    return cycles * b.total
