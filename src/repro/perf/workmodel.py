"""Per-solver work models, calibrated to the paper's measurements.

The performance model needs, for each code, how much floating-point work
and memory traffic one multigrid cycle generates per point/cell, and how
the sustained per-CPU rate responds to partition size (the cache effect
behind the superlinear speedups).  The calibration anchors come straight
from the paper:

NSU3D (section VI)
    * 72M points, 433M DOF; 6-level W-cycle takes 31.3 s on 128 CPUs and
      1.95 s on 2008 CPUs;
    * single-grid runs sustain 3.4 TFLOP/s on 2008 CPUs (1.69 GFLOP/s
      per CPU at ~36k points/partition);
    * single-grid speedup 2395 on 2008 CPUs relative to ideal-at-128 —
      i.e. the per-CPU rate grows ~19% as partitions shrink from 562k to
      36k points.

Cart3D (section VII)
    * 25M cells, 125M DOF; "somewhat better than 1.5 GFLOP/s on each
      CPU", 0.75 TFLOP/s on 496 CPUs, ~2.4 TFLOP/s at 2016 CPUs with 4
      levels of multigrid.

From the two NSU3D rate anchors the cache model (harmonic interpolation
between a cache-resident and a memory-bound rate, resident fraction
L3 / working-set) is solved in closed form; FLOPs-per-point then follows
from the 31.3 s anchor.  Nothing here is a hardware measurement — it is
the explicit substitution (DESIGN.md) for the machine we do not have.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.cpu import CPU_ITANIUM2_1600, CpuModel


@dataclass(frozen=True)
class SolverWorkModel:
    """Work/traffic profile of one solver."""

    name: str
    #: FLOPs per point (or cell) per level visit of one multigrid cycle.
    flops_per_unit: float
    #: Resident working set per point/cell (bytes) — drives cache model.
    bytes_per_unit: float
    #: Wire bytes per halo point/cell per exchange (nvar * 8 + indices).
    halo_bytes_per_unit: float
    #: Halo size law: halo = surface_coeff * (units/partition)^(2/3).
    surface_coeff: float
    #: Communication partners per rank (paper: max degree 18 fine grid).
    neighbors: int
    #: Halo exchanges per level visit (residual add + solution copy per
    #: smoothing stage, plus gradient/time-step exchanges).
    exchanges_per_visit: int
    #: Degrees of freedom per point/cell.
    nvar: int
    #: Mesh coarsening ratio between multigrid levels.
    coarsen_ratio: float
    #: Cache-resident / memory-bound sustained rates (FLOP/s per CPU).
    rate_cache: float
    rate_mem: float
    #: Load-imbalance coefficient: extra time fraction c / (units/P)^(2/3)
    #: (partition-size granularity; makes tiny coarse-level partitions —
    #: "some of the coarsest level partitions being empty" — expensive).
    imbalance_coeff: float
    #: Fraction of inter-grid (restriction/prolongation) traffic served
    #: from local memory.  Cart3D partitions every level with the same
    #: SFC, so fine and coarse partitions overlap strongly ("most of the
    #: communication ... will take place within the same local memory");
    #: NSU3D partitions levels independently and matches them greedily,
    #: leaving much more off-processor transfer traffic.
    intergrid_local_fraction: float = 0.0
    #: Inter-grid transfer volume relative to a coarse-level halo
    #: (non-nested levels move interior data, not just surfaces).
    intergrid_volume_factor: float = 3.0

    def sustained_rate(
        self, units_per_partition: float, cpu: CpuModel = CPU_ITANIUM2_1600
    ) -> float:
        """Per-CPU FLOP/s for a partition of the given size."""
        w = units_per_partition * self.bytes_per_unit
        return cpu.sustained_flops(w, self.rate_cache, self.rate_mem)

    def halo_units(self, units_per_partition: float) -> float:
        """Halo size (points/cells) of one partition."""
        return min(
            self.surface_coeff * units_per_partition ** (2.0 / 3.0),
            units_per_partition,
        )

    def imbalance_factor(self, units_per_partition: float) -> float:
        """Multiplier >= 1 on a level's compute time: max-loaded over
        average partition (capped — an empty partition still waits)."""
        if units_per_partition <= 0:
            return 4.0
        f = 1.0 + self.imbalance_coeff / units_per_partition ** (2.0 / 3.0)
        return min(f, 4.0)


def _solve_rate_anchors(
    w_small: float, w_big: float, ratio: float, rate_small: float,
    cpu: CpuModel = CPU_ITANIUM2_1600,
) -> tuple[float, float]:
    """Closed-form (rate_cache, rate_mem) from two anchor points.

    ``ratio = rate(w_small) / rate(w_big)`` and ``rate(w_small) =
    rate_small`` with the harmonic cache model.
    """
    h_s = cpu.resident_fraction(w_small)
    h_b = cpu.resident_fraction(w_big)
    # rate(h) = 1 / (h/rc + (1-h)/rm); let x = rm/rc:
    #   ratio = (h_b x + (1-h_b)) / (h_s x + (1-h_s))
    x = (ratio * (1 - h_s) - (1 - h_b)) / (h_b - ratio * h_s)
    # rate_small fixes the absolute scale
    rm = rate_small * (h_s * x + (1 - h_s))
    rc = rm / x
    return rc, rm


# -- NSU3D calibration ---------------------------------------------------------

_NSU3D_BYTES_PER_POINT = 300.0  # 6 vars x 8 B x ~6 resident arrays + edges
_N72M = 72.0e6

# single-grid anchors: 1.69 GF/s/CPU at 36k pts/partition, 19.3% superlinear
_NSU3D_RC, _NSU3D_RM = _solve_rate_anchors(
    w_small=_N72M / 2008 * _NSU3D_BYTES_PER_POINT,
    w_big=_N72M / 128 * _NSU3D_BYTES_PER_POINT,
    ratio=(2395.0 / 2008.0),
    rate_small=3.4e12 / 2008.0,
)

NSU3D_WORK = SolverWorkModel(
    name="NSU3D",
    # fitted against the 31.3 s / 128-CPU anchor (see
    # calibrate_nsu3d_flops, which reproduces this value)
    flops_per_unit=58.99e3,
    bytes_per_unit=_NSU3D_BYTES_PER_POINT,
    halo_bytes_per_unit=6 * 8.0 + 8.0,
    surface_coeff=6.0,
    neighbors=14,
    exchanges_per_visit=8,
    nvar=6,
    coarsen_ratio=8.0,
    rate_cache=_NSU3D_RC,
    rate_mem=_NSU3D_RM,
    imbalance_coeff=60.0,
    intergrid_local_fraction=0.0,
    intergrid_volume_factor=6.0,
)

# -- Cart3D calibration ---------------------------------------------------------

_CART3D_BYTES_PER_CELL = 200.0  # 5 vars x 8 B x ~5 resident arrays

CART3D_WORK = SolverWorkModel(
    name="Cart3D",
    flops_per_unit=2.4e3,
    bytes_per_unit=_CART3D_BYTES_PER_CELL,
    halo_bytes_per_unit=5 * 8.0 + 8.0,
    surface_coeff=6.0,
    neighbors=8,  # SFC partitions are predominantly rectangular
    exchanges_per_visit=6,  # one per RK stage + time step
    nvar=5,
    coarsen_ratio=7.4,  # paper: "in excess of 7"
    rate_cache=1.62e9,  # "somewhat better than 1.5 GFLOP/s"
    rate_mem=1.52e9,
    imbalance_coeff=30.0,
    intergrid_local_fraction=0.93,
    intergrid_volume_factor=3.0,
)


def calibrate_nsu3d_flops(
    target_seconds: float = 31.3,
    npoints: float = _N72M,
    ncpus: int = 128,
    mg_levels: int = 6,
) -> float:
    """FLOPs/point/visit reproducing the paper's 31.3 s 6-level W-cycle
    on 128 CPUs (compute-dominated at that partition size)."""
    total = 0.0
    n_l = npoints
    for level in range(mg_levels):
        per = n_l / ncpus
        visits = 2**level  # W-cycle: coarsest level seen 2^(n-1) times
        rate = NSU3D_WORK.sustained_rate(per)
        total += visits * per / rate * NSU3D_WORK.imbalance_factor(per)
        n_l /= NSU3D_WORK.coarsen_ratio
    return target_seconds / total
