"""Communication cost model for paper-scale virtual runs.

Composes the fabric models of :mod:`repro.machine.interconnect` with the
solver work models into per-cycle communication times:

* **intra-level halo exchange** — ``neighbors`` messages per rank per
  exchange, message size from the halo surface law; a fraction of the
  neighbor links crosses boxes and rides the box-to-box fabric;
* **inter-grid transfers** — restriction/prolongation between non-nested
  partitions (paper: communication graph degree 19 vs 18, and "we
  speculate that the performance of the inter-grid multigrid
  communication operations may be related to" the Random-Ring
  degradation) — charged as *irregular* traffic, which is what makes
  InfiniBand multigrid collapse (figs. 16b-18) while single-level runs
  barely tell the fabrics apart (figs. 16a, 19);
* **hybrid master-thread exchange** — per paper fig. 7(b): thread-
  parallel packing, serialized MPI on the master overlapped with the
  intra-process OpenMP copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.hybrid import PACK_SECONDS_PER_BYTE, master_thread_time
from ..machine.interconnect import (
    OPENMP_COARSE_MODE_PENALTY,
    SHARED_MEMORY,
    FabricModel,
    message_time,
)
from .workmodel import SolverWorkModel

#: Fraction of a rank's neighbor links that cross box boundaries when the
#: job spans more than one box (partitions are spatially local, so most
#: links stay inside a box; calibration constant).
CROSS_BOX_LINK_FRACTION = 0.25

#: Communication-graph degree of the inter-grid transfers (paper: max 19).
INTERGRID_NEIGHBORS = 19


@dataclass(frozen=True)
class CommScenario:
    """Where the job runs: fabric, boxes, ranks, threads per rank."""

    fabric: FabricModel
    nboxes: int = 1
    omp_threads: int = 1
    nranks: int = 1
    openmp_global_address: bool = False  # pure-OpenMP builds (fig. 20b)
    spans_bricks: bool = False


def halo_exchange_time(
    units_per_partition: float,
    work: SolverWorkModel,
    scenario: CommScenario,
    irregular: bool = False,
    neighbors: int | None = None,
) -> float:
    """One halo exchange for one rank's partition."""
    nbr = work.neighbors if neighbors is None else neighbors
    halo = work.halo_units(units_per_partition)
    msg_bytes = max(halo * work.halo_bytes_per_unit / nbr, 64.0)

    if scenario.openmp_global_address:
        # pure OpenMP: ghost values are copied through the global address
        # space; beyond one 128-CPU cabinet the coarse-mode pointer
        # penalty applies (fig. 20b's slope break)
        t = nbr * (
            SHARED_MEMORY.latency * 0.5
            + msg_bytes / SHARED_MEMORY.bandwidth
        )
        if scenario.spans_bricks:
            t *= OPENMP_COARSE_MODE_PENALTY
        return t

    cross = CROSS_BOX_LINK_FRACTION if scenario.nboxes > 1 else 0.0
    t_local = message_time(
        msg_bytes, same_box=True, fabric=scenario.fabric,
        nboxes=scenario.nboxes, irregular=irregular,
    )
    t_cross = (
        message_time(
            msg_bytes, same_box=False, fabric=scenario.fabric,
            nboxes=scenario.nboxes, irregular=irregular,
        )
        if cross > 0
        else 0.0
    )
    if irregular and cross > 0:
        # endpoint contention of Random-Ring-like patterns grows with
        # the number of participating ranks (reference [4])
        t_cross *= scenario.fabric.irregular_rank_factor(scenario.nranks)
    per_rank = nbr * ((1 - cross) * t_local + cross * t_cross)
    if scenario.nboxes > 1:
        per_rank += scenario.fabric.sync_overhead

    if scenario.omp_threads > 1:
        # master-thread hybrid (fig. 7b): T partitions' halos aggregated
        # into one buffer per remote process; MPI serialized on the
        # master thread, overlapped with the intra-process OpenMP copies.
        # While the master is in MPI the other T-1 threads idle — that
        # thread-sequential phase is the fig. 15 efficiency cost.
        t_threads = scenario.omp_threads
        pack_bytes = 2.0 * halo * work.halo_bytes_per_unit * t_threads
        omp_copy = (
            halo * work.halo_bytes_per_unit * (t_threads - 1)
            * PACK_SECONDS_PER_BYTE
        )
        return master_thread_time(
            mpi_time=per_rank,
            omp_copy_time=omp_copy,
            pack_bytes=pack_bytes,
            nthreads=t_threads,
        )
    return per_rank


def intergrid_transfer_time(
    coarse_units_per_partition: float,
    work: SolverWorkModel,
    scenario: CommScenario,
) -> float:
    """Restriction + prolongation between two levels, per rank.

    Charged as irregular (Random-Ring-like) traffic with the paper's
    degree-19 communication graph.
    """
    vol = work.intergrid_volume_factor
    if scenario.openmp_global_address:
        halo = work.halo_units(coarse_units_per_partition)
        nbytes = vol * halo * work.halo_bytes_per_unit
        t = 2 * (SHARED_MEMORY.latency + nbytes / SHARED_MEMORY.bandwidth)
        if scenario.spans_bricks:
            t *= OPENMP_COARSE_MODE_PENALTY
        return t
    # restriction + prolongation, each an irregular exchange whose
    # volume corresponds to a halo INTERGRID_VOLUME_FACTOR times larger;
    # only the non-local share of the transfers crosses processors
    remote = 1.0 - work.intergrid_local_fraction
    return remote * 2.0 * halo_exchange_time(
        coarse_units_per_partition * vol,
        work,
        scenario,
        irregular=True,
        neighbors=INTERGRID_NEIGHBORS,
    )


def collective_time(nranks: int, scenario: CommScenario,
                    nbytes: float = 64.0) -> float:
    """One small allreduce (residual norm / time-step sync) per cycle."""
    import numpy as np

    steps = max(1, int(np.ceil(np.log2(max(nranks, 2)))))
    worst = message_time(
        nbytes,
        same_box=scenario.nboxes == 1,
        fabric=scenario.fabric,
        nboxes=scenario.nboxes,
    )
    return steps * worst
