"""Performance model: paper-scale virtual scalability runs.

Work models calibrated to the paper's measured anchors, fabric/comm cost
composition, and the sweep drivers that regenerate figures 14-22.
"""

from .commmodel import (
    CROSS_BOX_LINK_FRACTION,
    INTERGRID_NEIGHBORS,
    CommScenario,
    collective_time,
    halo_exchange_time,
    intergrid_transfer_time,
)
from .report import (
    campaign_ledger_table,
    convergence_table,
    fill_summary_table,
    format_comparison,
    format_series_table,
    phase_table,
)
from .scaling import (
    CART3D_CELLS_25M,
    CART3D_CPU_COUNTS,
    HYBRID_THREAD_OVERHEAD,
    NSU3D_CPU_COUNTS,
    NSU3D_POINTS_72M,
    CycleBreakdown,
    ScalingSeries,
    cycle_time,
    infiniband_mpi_feasible,
    nsu3d_box_count,
    project_run_time,
    scaling_series,
)
from .workmodel import (
    CART3D_WORK,
    NSU3D_WORK,
    SolverWorkModel,
    calibrate_nsu3d_flops,
)

__all__ = [
    "SolverWorkModel",
    "NSU3D_WORK",
    "CART3D_WORK",
    "calibrate_nsu3d_flops",
    "CommScenario",
    "halo_exchange_time",
    "intergrid_transfer_time",
    "collective_time",
    "CROSS_BOX_LINK_FRACTION",
    "INTERGRID_NEIGHBORS",
    "cycle_time",
    "CycleBreakdown",
    "ScalingSeries",
    "scaling_series",
    "NSU3D_POINTS_72M",
    "CART3D_CELLS_25M",
    "NSU3D_CPU_COUNTS",
    "CART3D_CPU_COUNTS",
    "HYBRID_THREAD_OVERHEAD",
    "nsu3d_box_count",
    "infiniband_mpi_feasible",
    "project_run_time",
    "format_series_table",
    "format_comparison",
    "convergence_table",
    "fill_summary_table",
    "phase_table",
    "campaign_ledger_table",
]
