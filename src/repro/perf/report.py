"""Formatting helpers: print scaling series the way the paper plots them.

Each figure-reproduction bench prints one table per figure with the same
rows/series the paper reports (CPU counts, parallel speedups, TFLOP/s),
plus the paper's value where the text quotes one, so EXPERIMENTS.md can
record paper-vs-measured at a glance.
"""

from __future__ import annotations

from .scaling import ScalingSeries


def format_series_table(
    series_list: list,
    base_cpus: int | None = None,
    show_tflops: bool = False,
    title: str = "",
) -> str:
    """Render several :class:`ScalingSeries` as one aligned text table."""
    if not series_list:
        return ""
    cpus = series_list[0].cpus
    for s in series_list:
        if s.cpus != cpus:
            raise ValueError("series must share CPU counts")
    lines = []
    if title:
        lines.append(title)
    header = f"{'CPUs':>6} |"
    for s in series_list:
        header += f" {s.label:>18}"
    lines.append(header)
    lines.append("-" * len(header))
    speedups = [s.speedup(base_cpus) for s in series_list]
    tflops = [s.tflops() for s in series_list]
    for i, c in enumerate(cpus):
        row = f"{c:>6} |"
        for j, s in enumerate(series_list):
            cell = f"S={speedups[j][i]:7.0f}"
            if show_tflops:
                cell += f" {tflops[j][i]:5.2f}TF"
            row += f" {cell:>18}"
        lines.append(row)
    return "\n".join(lines)


def format_comparison(
    name: str, paper_value, measured_value, unit: str = ""
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style records."""
    if isinstance(paper_value, float):
        paper_s = f"{paper_value:g}"
    else:
        paper_s = str(paper_value)
    if isinstance(measured_value, float):
        meas_s = f"{measured_value:g}"
    else:
        meas_s = str(measured_value)
    ratio = ""
    try:
        r = float(measured_value) / float(paper_value)
        ratio = f"  (x{r:.2f} of paper)"
    except (TypeError, ValueError, ZeroDivisionError):
        pass
    return f"  {name:<48} paper: {paper_s:>10} {unit:<6} measured: {meas_s:>10} {unit}{ratio}"


def fill_summary_table(runs: dict, title: str = "") -> str:
    """Render database-fill campaign summaries side by side.

    ``runs`` maps a run label (e.g. ``"fill"``, ``"re-fill"``) to the
    counter dict a :meth:`repro.database.FillReport.summary` returns.
    Rows are the union of counter names in first-seen order, so two runs
    of the same fill — the second all cache hits — line up directly; this
    is the table the §IV aero-database examples and the fill bench print.
    """
    if not runs:
        return ""
    rows: list = []
    for summary in runs.values():
        for name in summary:
            if name not in rows:
                rows.append(name)
    labels = list(runs)
    width = max(len(r) for r in rows) + 2
    lines = []
    if title:
        lines.append(title)
    header = f"{'':<{width}} |" + "".join(f" {label:>14}" for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for name in rows:
        row = f"{name:<{width}} |"
        for label in labels:
            value = runs[label].get(name, "-")
            if isinstance(value, float):
                cell = f"{value:g}"
            else:
                cell = str(value)
            row += f" {cell:>14}"
        lines.append(row)
    return "\n".join(lines)


def campaign_ledger_table(summary: dict, title: str = "") -> str:
    """Render one campaign-journal snapshot as a two-column ledger.

    ``summary`` is the counter dict
    :meth:`repro.database.CheckpointState.summary` returns (cases,
    completed, failed, in flight, ...); this is the table
    ``python -m repro.database status <journal>`` prints.
    """
    if not summary:
        return ""
    width = max(len(name) for name in summary) + 2
    lines = []
    if title:
        lines.append(title)
    header = f"{'':<{width}} | {'count':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, value in summary.items():
        cell = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name:<{width}} | {cell:>10}")
    return "\n".join(lines)


def phase_table(phases: dict, makespan: float | None = None,
                title: str = "") -> str:
    """Render per-phase span aggregates, heaviest phase first.

    ``phases`` maps a span name to ``{"calls", "seconds", "cat"}`` — the
    shape :meth:`repro.telemetry.Timeline.phase_totals` produces; this
    is the table ``python -m repro.telemetry report`` prints.  With a
    ``makespan`` each row also shows its share of the run.
    """
    if not phases:
        return ""
    names = sorted(phases, key=lambda n: -phases[n]["seconds"])
    width = max(max(len(n) for n in names), len("phase")) + 2
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'phase':<{width}} | {'cat':<10} {'calls':>8} {'seconds':>12}"
    )
    if makespan:
        header += f" {'% span':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        row = phases[name]
        line = (
            f"{name:<{width}} | {row.get('cat', ''):<10}"
            f" {row['calls']:>8} {row['seconds']:>12.6f}"
        )
        if makespan:
            line += f" {100.0 * row['seconds'] / makespan:>7.1f}%"
        lines.append(line)
    return "\n".join(lines)


def convergence_table(histories: dict, every: int = 50) -> str:
    """Residual histories (fig. 14a style) side by side.

    ``histories`` maps label -> list of residuals.
    """
    labels = list(histories)
    n = max(len(h) for h in histories.values())
    lines = [
        f"{'cycle':>6} |" + "".join(f" {l:>14}" for l in labels),
    ]
    lines.append("-" * len(lines[0]))
    for i in range(0, n, every):
        row = f"{i:>6} |"
        for l in labels:
            h = histories[l]
            row += f" {h[i]:14.3e}" if i < len(h) else f" {'-':>14}"
        lines.append(row)
    return "\n".join(lines)
