"""Pluggable comm backends for the distributed solve driver.

Solver kernels operate on per-partition state dicts (``{pid: array}``)
and talk to one small Exchanger surface — ``copy``, ``add``,
``start_copy`` and ``charge`` — so the same kernel runs under pure MPI
(one partition per rank, :class:`~repro.comm.exchange.ExchangePlan`) or
the paper's hybrid master-thread model (several partitions per process,
:class:`~repro.comm.hybrid.HybridProcess`, fig. 7b) without change.

``start_copy`` is the overlapped-exchange entry point (post sends,
compute interior, finish boundary).  The hybrid backend is already
internally overlapped — its intra-process copies run while inter-process
messages are in transit — so its ``start_copy`` completes eagerly and
returns an already-finished pending.

Setting ``sanitize = True`` on an exchanger arms the
:class:`~repro.runtime.sanitizer.GhostSanitizer` for every overlap
window it opens: ghost slots are poisoned with a NaN canary and the
protected arrays are swapped for read-trapping guard views until the
matching ``finish()``.
"""

from __future__ import annotations

from ..errors import ExchangeLifecycleError


class PendingGroup:
    """A batch of in-flight owner->ghost exchanges (one per partition).

    Like the per-partition :class:`~repro.comm.exchange.PendingExchange`
    it wraps, ``finish`` must run exactly once; a second call raises
    :class:`~repro.errors.ExchangeLifecycleError`.
    """

    def __init__(self, pendings: list):
        self.pendings = pendings
        self.done = False

    def finish(self) -> None:
        if self.done:
            raise ExchangeLifecycleError(
                "PendingGroup.finish called twice; each overlap window "
                "must be closed exactly once"
            )
        self.done = True
        for p in self.pendings:
            p.finish()


class PlanExchanger:
    """Pure-MPI backend: plan-based exchange per partition.

    ``plans`` maps partition id -> :class:`ExchangePlan`; in pure mode a
    rank holds exactly one partition, making every operation identical
    (same messages, same tags, same virtual-clock charges) to the
    historical per-solver code.
    """

    kind = "plan"

    def __init__(self, comm, plans: dict):
        self.comm = comm
        self.plans = plans
        #: when True, ``charge`` bills compute time to the virtual
        #: clock so overlap benefits show in SimMPI makespans
        self.charging = False
        #: when True, ``start_copy`` arms the GhostSanitizer: NaN
        #: canaries in the ghost slots plus read-trapping guard views
        #: until the matching ``finish()``
        self.sanitize = False

    def copy(self, arrays: dict, tag: int = 0) -> None:
        for pid in sorted(arrays):
            self.plans[pid].exchange_copy(self.comm, arrays[pid], tag)

    def add(self, arrays: dict, tag: int = 1) -> None:
        for pid in sorted(arrays):
            self.plans[pid].exchange_add(self.comm, arrays[pid], tag)

    def start_copy(self, arrays: dict, tag: int = 0):
        group = PendingGroup([
            self.plans[pid].start_copy(self.comm, arrays[pid], tag)
            for pid in sorted(arrays)
        ])
        if self.sanitize:
            from .sanitizer import GhostSanitizer

            return GhostSanitizer(self.plans).guard(arrays, group)
        return group

    def charge(self, flops: float) -> None:
        if self.charging and flops > 0.0:
            self.comm.compute(flops=flops)


class HybridExchanger:
    """Hybrid backend: one :class:`HybridProcess` serving all partitions
    of this MPI process (paper fig. 7b master-thread model)."""

    kind = "hybrid"

    def __init__(self, comm, process):
        self.comm = comm
        self.process = process
        self.charging = False
        #: accepted for interface symmetry; the hybrid backend has no
        #: overlap window to sanitize (``start_copy`` completes eagerly)
        self.sanitize = False

    def copy(self, arrays: dict, tag: int = 0) -> None:
        self.process.exchange_copy(self.comm, arrays, tag)

    def add(self, arrays: dict, tag: int = 1) -> None:
        self.process.exchange_add(self.comm, arrays, tag)

    def start_copy(self, arrays: dict, tag: int = 0) -> PendingGroup:
        # intrinsically overlapped: intra-process copies already run
        # while inter-process messages are in flight.  A fresh group per
        # call (not a shared sentinel) keeps the exactly-once ``finish``
        # contract enforceable.
        self.copy(arrays, tag)
        return PendingGroup([])

    def charge(self, flops: float) -> None:
        if self.charging and flops > 0.0:
            self.comm.compute(flops=flops)
