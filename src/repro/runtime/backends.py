"""Pluggable comm backends for the distributed solve driver.

Solver kernels operate on per-partition state dicts (``{pid: array}``)
and talk to one small Exchanger surface — ``copy``, ``add``,
``start_copy`` and ``charge`` — so the same kernel runs under pure MPI
(one partition per rank, :class:`~repro.comm.exchange.ExchangePlan`),
the paper's hybrid master-thread model (several partitions per process,
:class:`~repro.comm.hybrid.HybridProcess`, fig. 7b), or real spawned
worker processes (:class:`ProcessExchanger`, shared-memory halo
buffers) without change.

``start_copy`` is the overlapped-exchange entry point (post sends,
compute interior, finish boundary).  The hybrid backend is already
internally overlapped — its intra-process copies run while inter-process
messages are in transit — so its ``start_copy`` completes eagerly and
returns an already-finished pending.  The process backend's window is
*real* concurrency: between the post barrier and the finish barrier
every worker computes its interior on its own core.

Setting ``sanitize = True`` on an exchanger arms the
:class:`~repro.runtime.sanitizer.GhostSanitizer` for every overlap
window it opens: ghost slots are poisoned with a NaN canary and the
protected arrays are swapped for read-trapping guard views until the
matching ``finish()``.

Exchangers are constructed only inside this package — everything else
routes through :func:`make_exchanger` (or backend selection on a
:class:`~repro.runtime.config.RuntimeConfig`); lint rule R011 enforces
that, so lifecycle flags (``charging``/``sanitize``) stay uniform.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ExchangeLifecycleError
from ..telemetry.spans import span as _span


class PendingGroup:
    """A batch of in-flight owner->ghost exchanges (one per partition).

    Like the per-partition :class:`~repro.comm.exchange.PendingExchange`
    it wraps, ``finish`` must run exactly once; a second call raises
    :class:`~repro.errors.ExchangeLifecycleError`.

    If a member ``finish()`` fails, the group is **not** marked done:
    members that already closed are skipped on a retry (their own
    ``done`` flags record the progress), and the raised error carries
    the failing partition id as a note.
    """

    def __init__(self, pendings: list):
        self.pendings = pendings
        self.done = False

    def finish(self) -> None:
        if self.done:
            raise ExchangeLifecycleError(
                "PendingGroup.finish called twice; each overlap window "
                "must be closed exactly once"
            )
        for p in self.pendings:
            if getattr(p, "done", False):
                # closed by an earlier, partially failed finish()
                continue
            try:
                p.finish()
            except Exception as exc:
                pid = getattr(getattr(p, "plan", None), "rank", None)
                exc.add_note(
                    f"while finishing the exchange of partition {pid}"
                )
                raise
        # only a fully closed group is done — a mid-loop failure leaves
        # the group open so the remaining members can still be drained
        self.done = True


class PlanExchanger:
    """Pure-MPI backend: plan-based exchange per partition.

    ``plans`` maps partition id -> :class:`ExchangePlan`; in pure mode a
    rank holds exactly one partition, making every operation identical
    (same messages, same tags, same virtual-clock charges) to the
    historical per-solver code.
    """

    kind = "plan"

    def __init__(self, comm, plans: dict):
        self.comm = comm
        self.plans = plans
        #: when True, ``charge`` bills compute time to the virtual
        #: clock so overlap benefits show in SimMPI makespans
        self.charging = False
        #: when True, ``start_copy`` arms the GhostSanitizer: NaN
        #: canaries in the ghost slots plus read-trapping guard views
        #: until the matching ``finish()``
        self.sanitize = False

    def copy(self, arrays: dict, tag: int = 0) -> None:
        for pid in sorted(arrays):
            self.plans[pid].exchange_copy(self.comm, arrays[pid], tag)

    def add(self, arrays: dict, tag: int = 1) -> None:
        for pid in sorted(arrays):
            self.plans[pid].exchange_add(self.comm, arrays[pid], tag)

    def start_copy(self, arrays: dict, tag: int = 0):
        group = PendingGroup([
            self.plans[pid].start_copy(self.comm, arrays[pid], tag)
            for pid in sorted(arrays)
        ])
        if self.sanitize:
            from .sanitizer import GhostSanitizer

            return GhostSanitizer(self.plans).guard(arrays, group)
        return group

    def charge(self, flops: float) -> None:
        if self.charging and flops > 0.0:
            self.comm.compute(flops=flops)


class HybridExchanger:
    """Hybrid backend: one :class:`HybridProcess` serving all partitions
    of this MPI process (paper fig. 7b master-thread model)."""

    kind = "hybrid"

    def __init__(self, comm, process):
        self.comm = comm
        self.process = process
        self.charging = False
        #: accepted for interface symmetry; the hybrid backend has no
        #: overlap window to sanitize (``start_copy`` completes eagerly)
        self.sanitize = False

    def copy(self, arrays: dict, tag: int = 0) -> None:
        self.process.exchange_copy(self.comm, arrays, tag)

    def add(self, arrays: dict, tag: int = 1) -> None:
        self.process.exchange_add(self.comm, arrays, tag)

    def start_copy(self, arrays: dict, tag: int = 0) -> PendingGroup:
        # intrinsically overlapped: intra-process copies already run
        # while inter-process messages are in flight.  A fresh group per
        # call (not a shared sentinel) keeps the exactly-once ``finish``
        # contract enforceable.
        self.copy(arrays, tag)
        return PendingGroup([])

    def charge(self, flops: float) -> None:
        if self.charging and flops > 0.0:
            self.comm.compute(flops=flops)


class _ProcessPending:
    """The open half of a :class:`ProcessExchanger` overlap window.

    ``finish`` reads the peers' published owned rows into this worker's
    ghost slots, then passes the completion barrier that lets everyone
    reuse the shared buffers.
    """

    def __init__(self, exchanger: "ProcessExchanger", pid: int,
                 arr: np.ndarray, tag: int):
        self.x = exchanger
        self.plan = exchanger.plans[pid]
        self.arr = arr
        self.tag = tag
        self.done = False

    def finish(self) -> np.ndarray:
        if self.done:
            raise ExchangeLifecycleError(
                f"PendingExchange.finish called twice (rank "
                f"{self.plan.rank}, tag {self.tag}); each overlap window "
                f"must be closed exactly once"
            )
        self.done = True
        with _span("comm.exchange_copy_finish", cat="comm", tag=self.tag,
                   neighbors=self.plan.degree()):
            self.x._read_ghosts(self.plan, self.arr)
            self.x._wait()
        return self.arr


class ProcessExchanger:
    """Real multi-core backend: shared-memory halo exchange between
    spawned worker processes, synchronized by a two-phase barrier.

    Each worker owns exactly one partition.  For every directed
    neighbor pair the :class:`~repro.runtime.process.ProcessPool`
    allocates a flat float64 block in one shared slab; ``channels``
    maps neighbor rank -> ``(out, inbound)`` views of this worker's
    send and receive blocks.  Every collective operation is two barrier
    phases over the whole pool:

    * **publish** — write the rows the plan says each peer needs, then
      barrier (all data is now visible);
    * **consume** — read the peers' blocks into local slots, then
      barrier (all buffers are reusable).

    ``start_copy`` performs only the publish phase and returns a
    pending whose ``finish`` runs the consume phase — so between the
    two barriers all workers compute their interiors concurrently on
    separate cores, which is the paper's fig. 7 overlap made real.
    The kernels' SPMD structure (every rank issues the same exchange
    sequence) is what makes untagged barrier pairing sound; message
    tags are accepted for interface compatibility and recorded on
    telemetry spans only.

    Floating-point parity with :class:`PlanExchanger` holds because
    ``add`` accumulates at owners in the same sorted-neighbor order
    and the owner/ghost slot orderings are the plan's own.
    """

    kind = "process"

    def __init__(self, comm, plans: dict, channels: dict):
        self.comm = comm
        self.plans = plans
        #: neighbor rank -> (out view, inbound view): flat float64
        #: blocks of the pool's shared slab
        self.channels = channels
        #: accepted for symmetry; real wall clocks need no charging
        self.charging = False
        self.sanitize = False

    def _wait(self) -> None:
        self.comm.wait()

    def _publish(self, plan, arr: np.ndarray, slots: dict) -> None:
        """Write ``arr[slots[q]]`` into the out-block of each neighbor."""
        k = int(np.prod(arr.shape[1:], dtype=np.int64)) or 1
        for q in plan.neighbors:
            rows = slots.get(q)
            if rows is None or not len(rows):
                continue
            out, _inbound = self.channels[q]
            n = len(rows) * k
            if n > len(out):
                raise ConfigurationError(
                    f"shared halo block for pair ({plan.rank}->{q}) "
                    f"holds {len(out)} doubles, need {n}"
                )
            out[:n] = arr[rows].reshape(-1)

    def _read_ghosts(self, plan, arr: np.ndarray) -> None:
        k = int(np.prod(arr.shape[1:], dtype=np.int64)) or 1
        for q in plan.neighbors:
            rows = plan.ghost_slots.get(q)
            if rows is None or not len(rows):
                continue
            _out, inbound = self.channels[q]
            arr[rows] = inbound[: len(rows) * k].reshape(
                (len(rows),) + arr.shape[1:]
            )

    def copy(self, arrays: dict, tag: int = 0) -> None:
        for pid in sorted(arrays):
            plan = self.plans[pid]
            with _span("comm.exchange_copy", cat="comm", tag=tag,
                       neighbors=plan.degree()):
                self._publish(plan, arrays[pid], plan.owned_slots)
                self._wait()
                self._read_ghosts(plan, arrays[pid])
                self._wait()

    def add(self, arrays: dict, tag: int = 1) -> None:
        for pid in sorted(arrays):
            plan = self.plans[pid]
            arr = arrays[pid]
            with _span("comm.exchange_add", cat="comm", tag=tag,
                       neighbors=plan.degree()):
                self._publish(plan, arr, plan.ghost_slots)
                for q in plan.neighbors:
                    rows = plan.ghost_slots.get(q)
                    if rows is not None and len(rows):
                        arr[rows] = 0.0
                self._wait()
                k = int(np.prod(arr.shape[1:], dtype=np.int64)) or 1
                # accumulate in sorted-neighbor order: the same
                # summation order as PlanExchanger, hence bit parity
                for q in plan.neighbors:
                    rows = plan.owned_slots.get(q)
                    if rows is None or not len(rows):
                        continue
                    _out, inbound = self.channels[q]
                    np.add.at(
                        arr, rows,
                        inbound[: len(rows) * k].reshape(
                            (len(rows),) + arr.shape[1:]
                        ),
                    )
                self._wait()

    def start_copy(self, arrays: dict, tag: int = 0):
        pendings = []
        for pid in sorted(arrays):
            plan = self.plans[pid]
            with _span("comm.exchange_copy_start", cat="comm", tag=tag,
                       neighbors=plan.degree()):
                self._publish(plan, arrays[pid], plan.owned_slots)
                self._wait()
            pendings.append(_ProcessPending(self, pid, arrays[pid], tag))
        group = PendingGroup(pendings)
        if self.sanitize:
            from .sanitizer import GhostSanitizer

            return GhostSanitizer(self.plans).guard(arrays, group)
        return group

    def charge(self, flops: float) -> None:
        """No-op: the process backend's clock is the real one."""


def make_exchanger(backend: str, comm, *, plans: dict | None = None,
                   process=None, channels: dict | None = None):
    """The one blessed construction point for exchangers.

    Lint rule R011 bans direct ``*Exchanger(...)`` construction outside
    :mod:`repro.runtime`, so every exchanger in the tree comes through
    here (or through :class:`~repro.runtime.config.RuntimeConfig`
    backend selection in the driver) with uniform lifecycle flags.
    """
    if backend in ("sim", "plan"):
        return PlanExchanger(comm, plans or {})
    if backend == "hybrid":
        return HybridExchanger(comm, process)
    if backend == "process":
        return ProcessExchanger(comm, plans or {}, channels or {})
    raise ConfigurationError(
        f"unknown exchanger backend {backend!r}; choose 'sim', "
        "'hybrid' or 'process'"
    )
