"""Solver-agnostic distributed domains (tentpole piece 2).

A :class:`DistributedDomain` owns what used to be duplicated between
``LocalDomain`` (NSU3D) and ``LocalCartDomain`` (Cart3D): the
:class:`~repro.comm.exchange.LocalHalo` lifecycle — local numbering with
owned vertices first, the owned/ghost split, the matched exchange plan —
plus an opaque solver payload carrying the rank-local physics (a
``FlowContext``, a local Cart3D level, ...).  Attribute access falls
through to the payload so existing call sites keep reading ``dom.vol``
or ``dom.ctx.edges`` unchanged.

:func:`build_domain_hierarchy` stacks domains for multigrid: coarse
partitions are *derived* from the fine partition (a coarse agglomerate
lives where its first fine member lives), and the halo ghost sets are
widened so every coarse agglomerate referenced by an owned fine point is
locally resident — the invariant the distributed transfer operators in
:mod:`repro.runtime.driver` rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..comm.exchange import build_halos
from ..errors import ConfigurationError


class DistributedDomain:
    """One rank's share of one level: halo + solver payload.

    ``halo`` carries the local numbering and exchange plan; ``ctx`` is
    the solver-specific payload in that numbering.  Unknown attributes
    delegate to the payload, so a domain can stand in wherever the
    payload used to be passed.
    """

    def __init__(self, halo, ctx: Any):
        self.halo = halo
        self.ctx = ctx
        #: scratch space for derived structures (interior/ghost splits
        #: for overlapped exchange, frozen operators, ...)
        self.cache: dict = {}

    @property
    def nowned(self) -> int:
        return self.halo.nowned

    @property
    def nlocal(self) -> int:
        return self.halo.nlocal

    def __getattr__(self, name: str):
        if name.startswith("_") or "ctx" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.ctx, name)


@dataclass
class LevelSpec:
    """Global description of one level, ready to be decomposed.

    ``payload(halo, part)`` builds the rank-local solver payload for one
    halo — the only solver-specific step of domain construction.
    """

    nvert: int
    edges: np.ndarray
    payload: Callable[[Any, np.ndarray], Any]


@dataclass
class DomainSet:
    """All ranks' domains for one level, plus the partition vector."""

    domains: list
    part: np.ndarray
    nglobal: int

    @property
    def nparts(self) -> int:
        return len(self.domains)


def build_domain_set(
    spec: LevelSpec,
    part: np.ndarray,
    extra_ghosts: list | None = None,
) -> DomainSet:
    """Decompose one level along ``part`` into per-rank domains."""
    part = np.asarray(part, dtype=np.int64)
    halos = build_halos(spec.nvert, spec.edges, part,
                        extra_ghosts=extra_ghosts)
    domains = [DistributedDomain(h, spec.payload(h, part)) for h in halos]
    return DomainSet(domains=domains, part=part, nglobal=spec.nvert)


def derive_coarse_partition(
    cluster: np.ndarray, fine_part: np.ndarray, ncoarse: int
) -> np.ndarray:
    """Coarse partition induced by a fine one: an agglomerate is owned
    by the rank owning its lowest-global-id fine member (the same
    deterministic rule that assigns cross edges in ``build_halos``)."""
    cluster = np.asarray(cluster, dtype=np.int64)
    fine_part = np.asarray(fine_part, dtype=np.int64)
    coarse = np.full(ncoarse, -1, dtype=np.int64)
    # reversed assignment: the lowest fine member writes last and wins
    order = np.arange(len(cluster) - 1, -1, -1)
    coarse[cluster[order]] = fine_part[order]
    if (coarse < 0).any():
        raise ConfigurationError("cluster map leaves empty agglomerates")
    return coarse


@dataclass
class DomainHierarchy:
    """A multigrid stack of :class:`DomainSet` levels.

    ``cluster_local[l][p]`` maps rank ``p``'s *owned* fine rows on level
    ``l`` to the local slot of their coarse agglomerate on level
    ``l + 1`` (owned or ghost there — the widened halos guarantee
    residency).
    """

    levels: list
    cluster_local: list

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    @property
    def nparts(self) -> int:
        return self.levels[0].nparts


def build_domain_hierarchy(
    specs: list,
    clusters: list,
    part: np.ndarray,
) -> DomainHierarchy:
    """Decompose a whole multigrid hierarchy from one fine partition.

    ``specs`` holds one :class:`LevelSpec` per level (fine first);
    ``clusters[l]`` maps level-``l`` global ids to level-``l+1`` global
    agglomerates (``len(specs) == len(clusters) + 1``).
    """
    if len(specs) != len(clusters) + 1:
        raise ConfigurationError("need one cluster map per level gap")
    part = np.asarray(part, dtype=np.int64)
    nparts = int(part.max()) + 1 if len(part) else 0

    parts = [part]
    for l, cluster in enumerate(clusters):
        parts.append(
            derive_coarse_partition(cluster, parts[l], specs[l + 1].nvert)
        )

    levels = []
    for l, spec in enumerate(specs):
        extra = None
        if l > 0:
            # every coarse agglomerate referenced by an owned fine point
            # must be resident for the transfer operators
            cluster = np.asarray(clusters[l - 1], dtype=np.int64)
            extra = [
                np.unique(cluster[np.flatnonzero(parts[l - 1] == p)])
                for p in range(nparts)
            ]
        levels.append(build_domain_set(spec, parts[l], extra_ghosts=extra))

    cluster_local = []
    for l, cluster in enumerate(clusters):
        cluster = np.asarray(cluster, dtype=np.int64)
        per_rank = {}
        for p in range(nparts):
            hf = levels[l].domains[p].halo
            hc = levels[l + 1].domains[p].halo
            g2l = np.full(specs[l + 1].nvert, -1, dtype=np.int64)
            g2l[hc.local_to_global()] = np.arange(hc.nlocal)
            local = g2l[cluster[hf.owned_global]]
            if (local < 0).any():
                raise ConfigurationError(
                    "coarse agglomerate of an owned fine point is not "
                    "locally resident — halo widening failed"
                )
            per_rank[p] = local
        cluster_local.append(per_rank)

    return DomainHierarchy(levels=levels, cluster_local=cluster_local)
