"""Unified backend selection for the distributed runtime (PR 7).

One frozen :class:`RuntimeConfig` replaces the ``hybrid`` / ``overlap``
/ ``sanitize`` / ``nranks`` keywords that were previously scattered
across ``make_parallel_*``, the ``Parallel*`` facades and
``Cart3DCaseRunner``.  The ``backend`` selector names the execution
model explicitly:

* ``"sim"`` — in-process :class:`~repro.comm.simmpi.SimMPI` world, one
  simulated rank thread per partition (virtual clocks, deterministic).
* ``"hybrid"`` — SimMPI world with fewer ranks than partitions; each
  rank's master thread serves several partitions (paper fig. 7b).
  Requires an explicit ``nranks < nparts``.
* ``"process"`` — spawned ``multiprocessing`` worker pool, one OS
  process per partition with shared-memory halo exchange: the only
  backend whose parallelism is real wall-clock concurrency.

Old keyword call sites keep working through
:func:`resolve_config`, which folds them into a config under a
``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..kernels import KernelConfig

#: The blessed backend names, in documentation order.
BACKENDS = ("sim", "hybrid", "process")


@dataclass(frozen=True)
class RuntimeConfig:
    """How a distributed solve executes — backend, rank count, exchange
    mode and safety rails, in one immutable value.

    ``nranks=None`` defaults to one rank per partition when the config
    is :meth:`resolve`-d against a concrete partition count.  The
    ``hybrid`` backend needs an explicit ``nranks`` smaller than the
    partition count; the ``process`` backend pins one worker per
    partition.

    ``charge_compute`` bills calibrated kernel FLOPs to SimMPI's
    virtual clocks and is meaningless (and rejected) under the
    ``process`` backend, whose clock is real.
    """

    backend: str = "sim"
    nranks: int | None = None
    overlap: bool = False
    sanitize: bool = False
    charge_compute: bool = False
    #: per-barrier / per-reply wait before a silent worker is declared
    #: dead (``WorkerCrash``); process backend only
    worker_timeout: float = 120.0
    #: numerical kernel engine the solver kernels run on (``None`` means
    #: the reference numpy engine); travels with the config into process
    #: workers, so every backend runs the same engine
    kernels: KernelConfig | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose one of "
                f"{BACKENDS}"
            )
        if self.nranks is not None and self.nranks < 1:
            raise ConfigurationError("nranks must be >= 1")
        if self.backend == "process" and self.charge_compute:
            raise ConfigurationError(
                "charge_compute bills virtual SimMPI clocks; the process "
                "backend runs on the real clock — drop charge_compute or "
                "use backend='sim'"
            )
        if self.worker_timeout <= 0:
            raise ConfigurationError("worker_timeout must be positive")

    def resolve(self, nparts: int) -> "RuntimeConfig":
        """Validate against a concrete partition count and default
        ``nranks`` (one rank per partition for sim/process)."""
        nranks = self.nranks
        if self.backend == "hybrid":
            if nranks is None:
                raise ConfigurationError(
                    "the hybrid backend serves several partitions per "
                    "rank; pass an explicit nranks < nparts"
                )
            if nranks >= nparts:
                raise ConfigurationError(
                    f"hybrid needs fewer ranks than partitions "
                    f"(got nranks={nranks}, nparts={nparts}); use "
                    "backend='sim' for one partition per rank"
                )
        elif self.backend == "process":
            if nranks is None:
                nranks = nparts
            if nranks != nparts:
                raise ConfigurationError(
                    f"the process backend runs one worker per partition "
                    f"(got nranks={nranks}, nparts={nparts})"
                )
        else:  # sim
            if nranks is None:
                nranks = nparts
            if nranks != nparts:
                raise ConfigurationError(
                    f"backend='sim' runs one rank per partition (got "
                    f"nranks={nranks}, nparts={nparts}); use "
                    "backend='hybrid' for several partitions per rank"
                )
        return replace(self, nranks=nranks)


def resolve_config(
    config: RuntimeConfig | None,
    backend: str | None = None,
    *,
    where: str,
    stacklevel: int = 3,
    **legacy: bool | int | None,
) -> RuntimeConfig:
    """Merge the blessed (``config``/``backend``) and deprecated
    (bare keyword) call styles into one :class:`RuntimeConfig`.

    ``legacy`` holds the historical keywords (``overlap``,
    ``charge_compute``, ``sanitize``, ``nranks``) with ``None`` meaning
    *not passed*.  Passing any of them warns ``DeprecationWarning``;
    combining them with ``config=`` is an error (two sources of truth).
    ``backend=`` alone is blessed shorthand for
    ``RuntimeConfig(backend=...)``.
    """
    given = {k: v for k, v in legacy.items() if v is not None}
    if given:
        if config is not None:
            raise ConfigurationError(
                f"{where}: pass either config=RuntimeConfig(...) or the "
                f"deprecated {sorted(given)} keyword(s), not both"
            )
        warnings.warn(
            f"{where}: the {sorted(given)} keyword(s) are deprecated; "
            f"pass config=RuntimeConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return RuntimeConfig(backend=backend or "sim", **given)
    if config is None:
        return RuntimeConfig(backend=backend or "sim")
    if backend is not None and backend != config.backend:
        raise ConfigurationError(
            f"{where}: backend={backend!r} conflicts with "
            f"config.backend={config.backend!r}"
        )
    return config


def merge_kernel_config(
    config: RuntimeConfig,
    kernel_config: KernelConfig | None,
    where: str,
) -> RuntimeConfig:
    """Fold a separately-passed ``kernel_config`` into a runtime config.

    The facades accept the engine selection both ways — embedded in the
    :class:`RuntimeConfig` (``kernels=``) or as a standalone
    ``kernel_config=`` keyword.  Passing both with different values is
    two sources of truth and an error.
    """
    if kernel_config is None:
        return config
    if config.kernels is not None and config.kernels != kernel_config:
        raise ConfigurationError(
            f"{where}: kernel_config={kernel_config!r} conflicts with "
            f"config.kernels={config.kernels!r}"
        )
    return replace(config, kernels=kernel_config)
