"""The one FAS cycle driver for every solver (tentpole piece 3).

Both codes use "the same multigrid cycling strategies" (paper fig. 4):
V-cycles and the preferred W-cycles that revisit the coarse levels
``2^(l-1)`` times per fine-grid visit, with the Full Approximation
Scheme forcing

    f_c = R_c(I q_f) - I (R_f(q_f) - f_f)

so the coarse correction vanishes at convergence.  What differs between
NSU3D and Cart3D — the smoother, the residual operator, the transfer
stencils, wall-row masking, correction limiting — is factored into a
:class:`LevelOps` adapter; this module owns only the cycle shape, the
coarse-CFL policy and the per-level telemetry spans.  The serial
adapters live next to each solver (``solvers/*/multigrid.py``), the
distributed one in :mod:`repro.runtime.driver` — all four paths execute
this single function.

Coarse-CFL policy (the one documented rule, replacing ``None`` ->
``cfl`` in NSU3D vs a hard-coded ``1.5`` in Cart3D):

* level 0 always runs at ``cfl``;
* coarse levels run at ``coarse_cfl`` when the caller passes one;
* otherwise they run at ``ops.coarse_cfl_fraction * cfl`` — NSU3D
  declares fraction 1.0 (its agglomerated coarse operators tolerate the
  fine CFL), Cart3D declares 0.75 (first-order coarse RK stability,
  reproducing the historical 1.5 at the default ``cfl=2.0``).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..telemetry.spans import span as _span


class LevelOps:
    """Protocol the cycle driver is parameterized over.

    Required attributes: ``name`` (span prefix), ``nlevels``,
    ``coarse_cfl_fraction``.  Required methods (``q`` is an opaque state
    — an ndarray for serial adapters, a per-partition dict for the
    distributed one):

    ``clone(q)``
        Independent copy of a state.
    ``smooth(level, q, forcing, cfl, nsteps)``
        ``nsteps`` smoothing steps of ``dq/dt = -(R(q) - forcing)``.
    ``defect(level, q, forcing)``
        ``R(q) - forcing`` (the fine-level quantity restricted into the
        coarse forcing term).
    ``restrict_state(level, q)``
        Volume-weighted restriction of ``q`` to level+1, including any
        boundary-condition fixup the coarse state must satisfy.
    ``coarse_forcing(level, q_c0, defect)``
        The FAS forcing ``R_c(q_c0) - I(defect)`` on level+1, including
        any wall-row masking.
    ``apply_correction(level, q, q_c, q_c0)``
        Prolong ``q_c - q_c0`` to ``level`` and apply it, including the
        solver's correction limiting/guarding.
    """


def effective_cfl(
    level: int, cfl: float, coarse_cfl: float | None, fraction: float
) -> float:
    """The unified coarse-CFL policy (see module docstring)."""
    if level == 0:
        return cfl
    if coarse_cfl is not None:
        return float(coarse_cfl)
    return fraction * cfl


def fas_cycle(
    ops,
    q,
    *,
    level: int = 0,
    forcing=None,
    cycle: str = "W",
    nu1: int = 1,
    nu2: int = 1,
    cfl: float,
    coarse_cfl: float | None = None,
):
    """One FAS cycle from ``level`` down; returns the updated state."""
    if cycle not in ("V", "W"):
        raise ConfigurationError("cycle must be 'V' or 'W'")
    with _span(f"{ops.name}.mg_level", cat="solver", level=level):
        return _fas_level(
            ops, q, level=level, forcing=forcing, cycle=cycle,
            nu1=nu1, nu2=nu2, cfl=cfl, coarse_cfl=coarse_cfl,
        )


def _fas_level(ops, q, *, level, forcing, cycle, nu1, nu2, cfl, coarse_cfl):
    this_cfl = effective_cfl(level, cfl, coarse_cfl, ops.coarse_cfl_fraction)

    q = ops.smooth(level, q, forcing, this_cfl, nu1)

    if level + 1 < ops.nlevels:
        # the restricted base state first (it must satisfy the coarse
        # level's own boundary conditions before R_c is evaluated)
        q_c0 = ops.restrict_state(level, q)
        defect = ops.defect(level, q, forcing)
        f_c = ops.coarse_forcing(level, q_c0, defect)

        q_c = ops.clone(q_c0)
        visits = 2 if (cycle == "W" and level + 2 < ops.nlevels) else 1
        for _ in range(visits):
            q_c = fas_cycle(
                ops, q_c, level=level + 1, forcing=f_c, cycle=cycle,
                nu1=nu1, nu2=nu2, cfl=cfl, coarse_cfl=coarse_cfl,
            )
        q = ops.apply_correction(level, q, q_c, q_c0)

    return ops.smooth(level, q, forcing, this_cfl, nu2)
