"""GhostSanitizer: runtime race detection for the overlap window.

The overlapped exchange (``start_copy`` → compute interior →
``finish``, paper fig. 7) carries an unchecked obligation: between the
two calls a kernel must neither read the protected arrays' ghost rows
nor write the arrays at all.  Under SimMPI a violation is silently
benign — rank threads run one at a time, so stale ghost values happen
to be the *pre-exchange* values and parity still holds — but it becomes
real data corruption on any backend where the exchange is genuinely
concurrent.  This module makes the violation loud *today*, under the
simulator, with two complementary mechanisms armed per window:

* **NaN canary.**  Ghost rows of every protected array are poisoned
  with NaN the moment the sends are posted.  Whole-array pointwise
  work (``conservative_to_primitive(q)`` and friends) is legal during
  the window — the NaN stays confined to the ghost rows of derived
  arrays, which a correct interior-only evaluation never gathers — but
  any computation that *consumes* a poisoned row turns NaN, which the
  parity gates and residual-history checks catch deterministically.
* **Guard views.**  The caller's state dict entries are swapped for
  :class:`GuardedArray` views that trap the accesses the canary cannot:
  row-selecting reads that touch the ghost region (integer, fancy and
  boolean indexing — the gather idiom of every stencil kernel) and all
  writes, raising :class:`~repro.errors.GhostRaceError` attributed to
  the innermost open telemetry span (the kernel phase, when tracing is
  enabled).  The underlying buffer is additionally marked
  ``writeable=False`` so even code holding a pre-swap reference cannot
  scribble on an in-flight exchange.

Basic slices (``q[:, 0]``, ``q[: nowned]``), pointwise ufuncs and
NumPy-function dispatch all pass through untrapped and return *plain*
``ndarray`` results, so a race-free kernel runs bit-identically with
the sanitizer armed — the false-positive rate on the shipped solvers is
the acceptance bar, proven by the runtime parity matrix and
``benchmarks/bench_ghost_sanitizer.py``.

Arming is wired through the exchanger surface: setting
``exchanger.sanitize = True`` (or ``DistributedSolveDriver(...,
sanitize=True)``) wraps every ``start_copy`` result in a
:class:`SanitizedPendingGroup` whose ``finish`` verifies the canary,
restores the raw arrays and only then completes the exchange.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExchangeLifecycleError, GhostRaceError
from ..telemetry.spans import get_tracer

__all__ = ["GuardedArray", "GhostSanitizer", "SanitizedPendingGroup"]


def _current_span() -> str | None:
    """Innermost open telemetry span name, for race attribution."""
    tracer = get_tracer()
    return tracer.current_span() if tracer.enabled else None


class GuardedArray(np.ndarray):
    """A read-trapping view over a protected array.

    Instances are created by :class:`GhostSanitizer` via
    ``raw.view(GuardedArray)`` plus three instance attributes:
    ``_ghost_start`` (first ghost row), ``_partition`` and ``_active``.
    A ``GuardedArray`` lacking those attributes (e.g. produced by
    ``.copy()`` or template construction) is inert and behaves exactly
    like ``ndarray``.

    Trapped while active:

    * ``__getitem__`` with a first-axis selector that can reach a ghost
      row: negative-normalized integers ``>= _ghost_start``, integer
      fancy indexes with any entry in the ghost region, boolean masks
      selecting any ghost row.
    * ``__setitem__`` — any write during the window.
    * ufunc ``out=`` targets and in-place ufunc methods (``np.add.at``).

    Everything else — basic slices, ``...``, pointwise ufuncs, NumPy
    function dispatch — passes through and returns plain ``ndarray``
    objects so guards never propagate into derived state.
    """

    def _trap(self, detail: str):
        raise GhostRaceError(
            detail,
            partition=getattr(self, "_partition", None),
            span=_current_span(),
        )

    def _selects_ghost_rows(self, idx) -> bool:
        sel = idx[0] if isinstance(idx, tuple) else idx
        if sel is None or sel is Ellipsis or isinstance(sel, slice):
            return False
        nrows = self.shape[0]
        ghost_start = self._ghost_start
        if isinstance(sel, (int, np.integer)):
            i = int(sel)
            if i < 0:
                i += nrows
            return i >= ghost_start
        arr = np.asarray(sel)
        if arr.dtype == bool:
            flat = arr.reshape(arr.shape[0], -1) if arr.ndim > 1 else arr
            if flat.shape[0] != nrows:
                return False
            return bool(np.asarray(flat[ghost_start:]).any())
        if np.issubdtype(arr.dtype, np.integer) and arr.size:
            rows = np.where(arr < 0, arr + nrows, arr)
            return bool((np.asarray(rows) >= ghost_start).any())
        return False

    def __getitem__(self, idx):
        if getattr(self, "_active", False) and self._selects_ghost_rows(idx):
            self._trap(
                "ghost rows read (gather into the poisoned region) "
                "during an open overlap window"
            )
        return self.view(np.ndarray)[idx]

    def __setitem__(self, idx, value):
        if getattr(self, "_active", False):
            self._trap(
                "write to a protected array during an open overlap window"
            )
        self.view(np.ndarray)[idx] = value

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out")
        if out is not None:
            for target in out:
                if getattr(target, "_active", False):
                    target._trap(
                        f"ufunc '{ufunc.__name__}' wrote (out=) into a "
                        f"protected array during an open overlap window"
                    )
            kwargs["out"] = tuple(
                t.view(np.ndarray) if isinstance(t, GuardedArray) else t
                for t in out
            )
        if method == "at" and inputs and getattr(inputs[0], "_active", False):
            inputs[0]._trap(
                f"in-place ufunc '{ufunc.__name__}.at' on a protected "
                f"array during an open overlap window"
            )
        stripped = tuple(
            x.view(np.ndarray) if isinstance(x, GuardedArray) else x
            for x in inputs
        )
        return getattr(ufunc, method)(*stripped, **kwargs)

    def __array_function__(self, func, types, args, kwargs):
        def strip(obj):
            if isinstance(obj, GuardedArray):
                return obj.view(np.ndarray)
            if isinstance(obj, tuple):
                return tuple(strip(v) for v in obj)
            if isinstance(obj, list):
                return [strip(v) for v in obj]
            if isinstance(obj, dict):
                return {k: strip(v) for k, v in obj.items()}
            return obj

        return func(*strip(args), **strip(kwargs or {}))


class SanitizedPendingGroup:
    """A pending overlap window with sanitizer instrumentation armed.

    Wraps the backend's :class:`~repro.runtime.backends.PendingGroup`;
    ``finish`` verifies the NaN canary survived, disarms the guards,
    restores the raw arrays into the caller's state dict and only then
    completes the underlying exchange (which needs the buffers
    writeable again to land the ghost values).
    """

    def __init__(self, inner, arrays: dict, guarded: list):
        self.inner = inner
        self._arrays = arrays
        #: list of (pid, raw, guard, ghost_start, poisoned)
        self._guarded = guarded
        self.done = False

    def finish(self) -> None:
        if self.done:
            raise ExchangeLifecycleError(
                "SanitizedPendingGroup.finish called twice; each overlap "
                "window must be closed exactly once"
            )
        self.done = True
        for pid, raw, guard, ghost_start, poisoned in self._guarded:
            guard._active = False
            raw.flags.writeable = True
            guard.flags.writeable = True
            if poisoned and not np.isnan(raw[ghost_start:]).all():
                raise GhostRaceError(
                    "NaN canary overwritten: ghost rows were written "
                    "during an open overlap window",
                    partition=pid,
                    span=_current_span(),
                )
            self._arrays[pid] = raw
        self._guarded = []
        self.inner.finish()


class GhostSanitizer:
    """Arms canaries and guard views around one overlap window."""

    def __init__(self, plans: dict):
        self.plans = plans

    def guard(self, arrays: dict, inner) -> SanitizedPendingGroup:
        """Poison + guard every protected array; returns the wrapper.

        Must be called *after* the sends are posted (``start_copy``
        already copied the owned rows out), and mutates ``arrays`` in
        place so the kernel's subsequent reads go through the guards.
        """
        guarded = []
        for pid in sorted(arrays):
            raw = arrays[pid]
            plan = self.plans[pid]
            if not plan.ghost_slots:
                continue
            ghost_start = min(
                int(slots.min()) for slots in plan.ghost_slots.values()
            )
            poisoned = bool(np.issubdtype(raw.dtype, np.floating))
            if poisoned:
                raw[ghost_start:] = np.nan
            raw.flags.writeable = False
            guard = raw.view(GuardedArray)
            guard._ghost_start = ghost_start
            guard._partition = pid
            guard._active = True
            arrays[pid] = guard
            guarded.append((pid, raw, guard, ghost_start, poisoned))
        return SanitizedPendingGroup(inner, arrays, guarded)
