"""Unified distributed-solve runtime (paper sections III & V).

The single partition -> halo -> multigrid -> cycle-driver stack both
solvers execute: :class:`Partitioner` adapters over the two
decomposition styles, solver-agnostic :class:`DistributedDomain` /
:class:`DomainSet` construction with multigrid-aware halo widening, the
generic FAS cycle driver with the documented coarse-CFL policy, and the
:class:`DistributedSolveDriver` cycle loop with pluggable comm backends
and opt-in overlapped exchange (fig. 7).

Solver packages contribute only physics kernels and thin config shims
(``ParallelNSU3D`` / ``ParallelCart3D``); lint rule R008 keeps all
distributed execution behind this package.
"""

from .backends import (
    HybridExchanger,
    PendingGroup,
    PlanExchanger,
    ProcessExchanger,
    make_exchanger,
)
from .config import (
    BACKENDS,
    RuntimeConfig,
    merge_kernel_config,
    resolve_config,
)
from .domain import (
    DistributedDomain,
    DomainHierarchy,
    DomainSet,
    LevelSpec,
    build_domain_hierarchy,
    build_domain_set,
    derive_coarse_partition,
)
from .driver import DistributedSolveDriver, SolverKernels, run_rank_cycles
from .multigrid import LevelOps, effective_cfl, fas_cycle
from .partitioners import MetisLinePartitioner, Partitioner, SFCPartitioner
from .process import ProcessComm, ProcessPool, SharedLayout, WorkerSpec
from .sanitizer import GhostSanitizer, GuardedArray, SanitizedPendingGroup

__all__ = [
    "BACKENDS",
    "RuntimeConfig",
    "merge_kernel_config",
    "resolve_config",
    "Partitioner",
    "MetisLinePartitioner",
    "SFCPartitioner",
    "DistributedDomain",
    "DomainSet",
    "DomainHierarchy",
    "LevelSpec",
    "build_domain_set",
    "build_domain_hierarchy",
    "derive_coarse_partition",
    "LevelOps",
    "effective_cfl",
    "fas_cycle",
    "DistributedSolveDriver",
    "SolverKernels",
    "run_rank_cycles",
    "PlanExchanger",
    "HybridExchanger",
    "ProcessExchanger",
    "make_exchanger",
    "PendingGroup",
    "ProcessComm",
    "ProcessPool",
    "SharedLayout",
    "WorkerSpec",
    "GhostSanitizer",
    "GuardedArray",
    "SanitizedPendingGroup",
]
