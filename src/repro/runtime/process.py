"""Spawned worker pool for the ``process`` backend (PR 7 tentpole).

This is the only execution model in the tree whose parallelism is real:
one OS process per partition, each running
:func:`~repro.runtime.driver.run_rank_cycles` on its own core, with
halo traffic through a single shared float64 slab instead of simulated
messages.  The structure follows nengo_mpi's master/worker split —
spawn once, build-from-spec in the worker, run N steps on command,
gather — adapted to the Exchanger protocol:

* :class:`SharedLayout` carves the slab: one flat block per directed
  neighbor pair per level (sized for the widest payload, the
  ``nvar x nvar`` block diagonals), one ``(nranks, COLLECTIVE_CAP)``
  collective scratch, one ``(nglobal, nvar)`` gather region.
* :class:`WorkerSpec` is the picklable build recipe a worker receives:
  its per-level :class:`~repro.runtime.domain.DistributedDomain` (halo
  + payload, caches dropped), cluster maps, the kernels object, and the
  exchange-mode flags.
* :class:`ProcessComm` gives workers the tiny comm surface the kernels
  use — ``rank``/``clock``/``allreduce``/``wait`` — where ``wait`` is
  the pool-wide two-phase barrier and ``allreduce`` combines rows in
  rank order, the same summation order as SimMPI's ``_reduce``, so the
  parity gate holds bit-for-bit across backends.
* :class:`ProcessPool` owns the lifecycle: spawn + ready handshake,
  ``run`` round-trips over pipes, prompt failure detection (a dead or
  silent worker raises :class:`~repro.errors.WorkerCrash` and aborts
  the barrier so the survivors unwind too), idempotent ``close``.

Workers run their solves under a private enabled
:class:`~repro.telemetry.spans.Tracer` whenever the master's tracer is
enabled, and ship the recorded spans back over the pipe; the pool
absorbs them into the master tracer so ``python -m repro.telemetry
report`` renders a true multi-core timeline.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass
from multiprocessing import synchronize as mp_sync
from multiprocessing.connection import Connection
from multiprocessing.sharedctypes import RawArray
from threading import BrokenBarrierError

import numpy as np

from ..errors import ConfigurationError, RuntimeClosed, WorkerCrash
from ..telemetry.spans import Tracer, get_tracer, set_tracer
from .backends import make_exchanger
from .domain import DistributedDomain, DomainHierarchy

#: Doubles of per-rank scratch for one collective; kernels reduce tiny
#: vectors (residual norms, physicality counts), so this is generous.
COLLECTIVE_CAP = 32


@dataclass(frozen=True)
class SharedLayout:
    """Offsets into the pool's one shared float64 slab.

    ``pair_offsets[(level, src, dst)]`` locates the block ``src``
    publishes for ``dst`` on ``level`` (capacity in doubles); the
    collective and gather regions follow the pair blocks.  Built once
    on the master and shipped to every worker, so all processes carve
    identical views.
    """

    pair_offsets: dict
    coll_offset: int
    gather_offset: int
    gather_shape: tuple
    nranks: int
    total: int

    @classmethod
    def build(cls, hierarchy: DomainHierarchy, nvar: int) -> "SharedLayout":
        # widest exchanged payload: the (nvar, nvar) smoother diagonals
        width = nvar * nvar
        offset = 0
        pair_offsets = {}
        for lev in range(hierarchy.nlevels):
            domains = hierarchy.levels[lev].domains
            for p in range(hierarchy.nparts):
                plan = domains[p].halo.plan
                for q in plan.neighbors:
                    rows = max(
                        len(plan.owned_slots.get(q, ())),
                        len(plan.ghost_slots.get(q, ())),
                    )
                    cap = max(rows, 1) * width
                    pair_offsets[(lev, p, q)] = (offset, cap)
                    offset += cap
        coll_offset = offset
        offset += hierarchy.nparts * COLLECTIVE_CAP
        gather_offset = offset
        gather_shape = (hierarchy.levels[0].nglobal, nvar)
        offset += gather_shape[0] * gather_shape[1]
        return cls(
            pair_offsets=pair_offsets,
            coll_offset=coll_offset,
            gather_offset=gather_offset,
            gather_shape=gather_shape,
            nranks=hierarchy.nparts,
            total=offset,
        )

    def channels(self, buf: np.ndarray, level: int, rank: int,
                 plan: object) -> dict:
        """``{neighbor: (out, inbound)}`` views for one worker+level."""
        out = {}
        for q in plan.neighbors:
            o_off, o_cap = self.pair_offsets[(level, rank, q)]
            i_off, i_cap = self.pair_offsets[(level, q, rank)]
            out[q] = (buf[o_off:o_off + o_cap], buf[i_off:i_off + i_cap])
        return out

    def coll_view(self, buf: np.ndarray) -> np.ndarray:
        n = self.nranks * COLLECTIVE_CAP
        return buf[self.coll_offset:self.coll_offset + n].reshape(
            self.nranks, COLLECTIVE_CAP
        )

    def gather_view(self, buf: np.ndarray) -> np.ndarray:
        n = self.gather_shape[0] * self.gather_shape[1]
        return buf[self.gather_offset:self.gather_offset + n].reshape(
            self.gather_shape
        )


@dataclass
class WorkerSpec:
    """Everything one worker needs to rebuild its share of the solve.

    Must pickle cleanly for ``spawn``: domains carry only their halo
    and payload (scratch caches are dropped on the master), kernels are
    plain config + coefficient state.
    """

    rank: int
    nranks: int
    #: per level: {rank: DistributedDomain} restricted to this worker
    doms: list
    #: per level gap: {rank: owned-fine-row -> local coarse slot}
    cluster_local: list
    kernels: object
    overlap: bool
    smoothing_only: bool
    sanitize: bool
    timeout: float


class ProcessComm:
    """The kernels' comm surface, backed by a pool-wide barrier.

    ``wait`` is one barrier phase (the exchangers call it twice per
    collective operation: publish, consume); a broken or timed-out
    barrier — some peer died or hung — surfaces as
    :class:`WorkerCrash` so the whole pool unwinds instead of
    deadlocking.  ``clock`` reads real elapsed seconds from the pool's
    shared epoch (``time.monotonic`` is system-wide on Linux), so the
    per-rank telemetry tracks share one time base.
    """

    def __init__(self, rank: int, nranks: int, barrier: "mp_sync.Barrier",
                 coll: np.ndarray, timeout: float, epoch: float) -> None:
        self.rank = rank
        self.nranks = nranks
        self._barrier = barrier
        self._coll = coll
        self._timeout = timeout
        self._epoch = epoch

    @property
    def clock(self) -> float:
        return time.monotonic() - self._epoch

    def wait(self) -> None:
        try:
            self._barrier.wait(self._timeout)
        except BrokenBarrierError:
            raise WorkerCrash(
                f"rank {self.rank}: pool barrier broke after "
                f"{self._timeout:.0f}s — a peer worker died or hung"
            ) from None

    def barrier(self) -> None:
        self.wait()

    def compute(self, flops: float = 0.0, seconds: float = 0.0) -> None:
        """No-op: worker time is real time; nothing to bill."""

    def allreduce(self, value: "float | np.ndarray",
                  op: str = "sum") -> "float | np.ndarray":
        """Reduce scalars or same-shape small arrays across all workers.

        Combines rows in ascending rank order — the same order SimMPI's
        ``_reduce`` folds rank values — so reductions are bit-identical
        across backends.
        """
        arr = np.asarray(value, dtype=np.float64)
        flat = arr.reshape(-1)
        if len(flat) > COLLECTIVE_CAP:
            raise ConfigurationError(
                f"allreduce payload of {len(flat)} doubles exceeds the "
                f"collective scratch ({COLLECTIVE_CAP})"
            )
        self._coll[self.rank, :len(flat)] = flat
        self.wait()
        acc = self._coll[0, :len(flat)].copy()
        for r in range(1, self.nranks):
            row = self._coll[r, :len(flat)]
            if op == "sum":
                acc = acc + row
            elif op == "max":
                acc = np.maximum(acc, row)
            elif op == "min":
                acc = np.minimum(acc, row)
            else:
                raise ConfigurationError(f"unknown allreduce op {op!r}")
        self.wait()
        if arr.ndim == 0:
            return float(acc[0])
        return acc.reshape(arr.shape)


def _worker_main(spec: WorkerSpec, layout: SharedLayout, raw: ctypes.Array,
                 barrier: mp_sync.Barrier, conn: Connection,
                 epoch: float) -> None:
    """Worker process entry point: build from spec, then serve commands.

    Pipe protocol (worker side): send ``("ready", rank)`` once built;
    then loop on ``("run", params)`` -> ``("done", rank, history,
    spans, instants)`` until ``("shutdown",)``.  Any failure sends
    ``("error", rank, traceback)`` and exits.
    """
    from .driver import run_rank_cycles

    try:
        buf = np.frombuffer(raw, dtype=np.float64)
        comm = ProcessComm(
            spec.rank, spec.nranks, barrier, layout.coll_view(buf),
            spec.timeout, epoch,
        )
        exchangers = []
        for lev, doms in enumerate(spec.doms):
            plan = doms[spec.rank].halo.plan
            x = make_exchanger(
                "process", comm, plans={spec.rank: plan},
                channels=layout.channels(buf, lev, spec.rank, plan),
            )
            x.sanitize = spec.sanitize
            exchangers.append(x)
        gather = layout.gather_view(buf)
        conn.send(("ready", spec.rank))
        while True:
            msg = conn.recv()
            if msg[0] == "shutdown":
                break
            params = dict(msg[1])
            trace = params.pop("trace", False)
            tracer = set_tracer(Tracer(enabled=bool(trace)))
            owned, history = run_rank_cycles(
                comm, exchangers, spec.doms, spec.cluster_local,
                spec.kernels, overlap=spec.overlap,
                smoothing_only=spec.smoothing_only, **params,
            )
            for gids, rows in owned:
                gather[gids] = rows
            conn.send((
                "done", spec.rank, history,
                list(tracer.spans), list(tracer.instants),
            ))
    except (BrokenPipeError, EOFError):
        pass  # master went away; nothing left to report to
    except BaseException:  # noqa: R002 — reported to the master as WorkerCrash
        # last handler in the process: the failure is not swallowed, it
        # crosses the pipe and resurfaces as WorkerCrash on the master
        try:
            conn.send(("error", spec.rank, traceback.format_exc()))
        except OSError:
            pass
    finally:
        conn.close()


class ProcessPool:
    """One spawned worker per partition, alive until :meth:`close`.

    Spawn cost is paid once per pool — successive :meth:`run` calls
    reuse the warm workers (and their built domains), which is what
    makes the wall-clock benchmark honest about steady-state cycling.
    """

    def __init__(self, hierarchy: DomainHierarchy, kernels: object, *,
                 nvar: int, overlap: bool = False,
                 smoothing_only: bool = False, sanitize: bool = False,
                 timeout: float = 120.0) -> None:
        ctx = mp.get_context("spawn")
        self.nranks = hierarchy.nparts
        self.timeout = float(timeout)
        self.layout = SharedLayout.build(hierarchy, nvar)
        self._raw = RawArray(ctypes.c_double, self.layout.total)
        self._buf = np.frombuffer(self._raw, dtype=np.float64)
        self._barrier = ctx.Barrier(self.nranks)
        self._epoch = time.monotonic()
        self._procs: list = []
        self._conns: list = []
        self.closed = False
        try:
            for rank in range(self.nranks):
                parent, child = ctx.Pipe()
                spec = self._make_spec(hierarchy, kernels, rank, overlap,
                                       smoothing_only, sanitize)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(spec, self.layout, self._raw, self._barrier,
                          child, self._epoch),
                    name=f"repro-worker-{rank}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)
            for rank in range(self.nranks):
                msg = self._recv(rank)
                if msg != ("ready", rank):
                    raise WorkerCrash(
                        f"worker {rank} sent {msg!r} instead of the "
                        "ready handshake"
                    )
        except BaseException:
            self._fail()
            raise

    def _make_spec(self, hierarchy: DomainHierarchy, kernels: object,
                   rank: int, overlap: bool, smoothing_only: bool,
                   sanitize: bool) -> WorkerSpec:
        # fresh domains (same halo + payload, empty caches): the scratch
        # caches can hold closures and frozen operators that don't pickle
        doms = [
            {rank: DistributedDomain(d.halo, d.ctx)}
            for d in (
                hierarchy.levels[lev].domains[rank]
                for lev in range(hierarchy.nlevels)
            )
        ]
        cluster_local = [
            {rank: hierarchy.cluster_local[lev][rank]}
            for lev in range(hierarchy.nlevels - 1)
        ]
        return WorkerSpec(
            rank=rank, nranks=self.nranks, doms=doms,
            cluster_local=cluster_local, kernels=kernels, overlap=overlap,
            smoothing_only=smoothing_only, sanitize=sanitize,
            timeout=self.timeout,
        )

    # -- failure handling ----------------------------------------------------

    def _recv(self, rank: int) -> tuple:
        """One worker's next message, or :class:`WorkerCrash` if it is
        dead or silent past the timeout."""
        conn, proc = self._conns[rank], self._procs[rank]
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if conn.poll(0.1):
                    return conn.recv()
            except (EOFError, OSError):
                raise WorkerCrash(
                    f"worker {rank} closed its pipe unexpectedly "
                    f"(exit code {proc.exitcode})"
                ) from None
            if not proc.is_alive() and not conn.poll(0):
                raise WorkerCrash(
                    f"worker {rank} died (exit code {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                raise WorkerCrash(
                    f"worker {rank} sent nothing for {self.timeout:.0f}s"
                )

    def _fail(self) -> None:
        """Hard teardown after a fault: break the barrier so live
        workers unwind, then terminate everything."""
        self.closed = True
        self._barrier.abort()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()

    # -- public surface ------------------------------------------------------

    def run(self, *, ncycles: int, cfl: float, cycle: str = "W",
            nu1: int = 1, nu2: int = 1,
            coarse_cfl: float | None = None) -> tuple:
        """One solve on the warm pool; returns ``(q_global, history)``."""
        if self.closed:
            raise RuntimeClosed(
                "ProcessPool is closed; the driver spawns a fresh pool "
                "on the next solve"
            )
        master = get_tracer()
        params = {
            "ncycles": ncycles, "cfl": cfl, "cycle": cycle, "nu1": nu1,
            "nu2": nu2, "coarse_cfl": coarse_cfl, "trace": master.enabled,
        }
        try:
            for conn in self._conns:
                try:
                    conn.send(("run", params))
                except (BrokenPipeError, OSError):
                    raise WorkerCrash(
                        "a worker's pipe is gone; the pool is broken"
                    ) from None
            histories = self._collect(master)
        except BaseException:
            if not self.closed:
                self._fail()
            raise
        return self.layout.gather_view(self._buf).copy(), histories[0]

    def _collect(self, master: Tracer) -> dict:
        """Drain one reply per worker, polling round-robin so an error
        from any rank surfaces promptly (not after the slowest)."""
        histories: dict = {}
        pending = set(range(self.nranks))
        deadline = time.monotonic() + self.timeout
        while pending:
            progressed = False
            for rank in sorted(pending):
                conn, proc = self._conns[rank], self._procs[rank]
                try:
                    has_msg = conn.poll(0.05)
                except (EOFError, OSError):
                    raise WorkerCrash(
                        f"worker {rank} closed its pipe unexpectedly "
                        f"(exit code {proc.exitcode})"
                    ) from None
                if has_msg:
                    msg = conn.recv()
                    if msg[0] == "error":
                        raise WorkerCrash(
                            f"worker {rank} raised:\n{msg[2]}"
                        )
                    _tag, _rank, history, spans, instants = msg
                    histories[rank] = history
                    if spans or instants:
                        master.absorb(spans, instants)
                    pending.discard(rank)
                    progressed = True
                    deadline = time.monotonic() + self.timeout
                elif not proc.is_alive() and not conn.poll(0):
                    raise WorkerCrash(
                        f"worker {rank} died mid-solve "
                        f"(exit code {proc.exitcode})"
                    )
            if not progressed and time.monotonic() > deadline:
                raise WorkerCrash(
                    f"workers {sorted(pending)} sent nothing for "
                    f"{self.timeout:.0f}s"
                )
        return histories

    def close(self) -> None:
        """Graceful, idempotent shutdown: ask, wait, then insist."""
        if self.closed:
            return
        self.closed = True
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass  # already gone; join/terminate below still runs
        for proc in self._procs:
            proc.join(timeout=min(self.timeout, 10.0))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
