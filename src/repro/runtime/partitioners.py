"""Partitioner adapters: one protocol over the two decomposition styles.

The paper's two codes decompose their meshes very differently — NSU3D
partitions the (implicit-line-contracted) dual graph METIS-style so no
line is ever split (section III, fig. 6b), Cart3D cuts the space-filling
curve into contiguous weighted segments on the fly (section V) — yet
everything downstream (halos, exchange plans, the cycle driver) only
needs the resulting partition vector.  :class:`Partitioner` is that
contract; the two adapters wrap the existing :mod:`repro.partition`
algorithms without changing a single assignment, so domains built
through the runtime are bit-identical to the historical per-solver
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..partition.graph import Graph, contract_lines, project_partition
from ..partition.metis import partition_graph
from ..partition.sfcpart import cell_weights, sfc_partition


@runtime_checkable
class Partitioner(Protocol):
    """Anything that can split a mesh into ``nparts`` pieces.

    ``partition(nparts)`` returns an int64 vector assigning every global
    vertex/cell to a rank in ``0..nparts-1``.  Determinism is part of
    the contract: the same partitioner state and ``nparts`` must yield
    the same vector, or halo plans built from it stop matching.
    """

    def partition(self, nparts: int) -> np.ndarray: ...


@dataclass
class MetisLinePartitioner:
    """NSU3D-style graph partitioning with implicit-line contraction.

    The vertex graph is contracted along the implicit lines before
    partitioning and the partition projected back, so the
    block-tridiagonal line solves stay rank-local (fig. 6b).
    """

    npoints: int
    edges: np.ndarray
    lines: list = field(default_factory=list)
    seed: int = 0

    def partition(self, nparts: int) -> np.ndarray:
        graph = Graph.from_edges(self.npoints, self.edges)
        if self.lines:
            cgraph, cluster = contract_lines(graph, self.lines)
            cpart = partition_graph(cgraph, nparts, seed=self.seed)
            return project_partition(cluster, cpart)
        return partition_graph(graph, nparts, seed=self.seed)


@dataclass
class SFCPartitioner:
    """Cart3D-style decomposition: contiguous segments of the SFC order.

    ``weights`` are per-cell work estimates (cut cells weighted 2.1x);
    cells are assumed already sorted along the space-filling curve, as
    the Cart3D mesh file provides them.
    """

    weights: np.ndarray

    @classmethod
    def from_level(cls, level) -> "SFCPartitioner":
        """Adapter from a :class:`~repro.solvers.cart3d.Cart3DLevel`."""
        return cls(weights=cell_weights(level.cut.is_cut_flow()))

    def partition(self, nparts: int) -> np.ndarray:
        return sfc_partition(self.weights, nparts)
