"""The one distributed cycle loop for both solvers (tentpole piece 4).

:class:`DistributedSolveDriver` owns everything the two historical
``Parallel*`` classes each reimplemented: backend selection (pure MPI
when ranks == partitions, hybrid master-thread when ranks <
partitions, real spawned workers under ``backend="process"``),
per-rank state initialization, the cycle loop with telemetry spans,
the distributed FAS adapter over
:func:`repro.runtime.multigrid.fas_cycle`, residual-history collection
and the final owned-row gather.

Solver physics enters through a *kernels* object (duck-typed; see
:class:`SolverKernels`) whose methods all operate on per-partition
dicts, so one partition per rank (pure MPI), many partitions per
process (hybrid) and one spawned worker per partition (process) all
run the same code: :func:`run_rank_cycles` is the shared, picklable
per-rank body — SimMPI rank threads call it through a closure, process
workers import it by name after spawn.
"""

from __future__ import annotations

import numpy as np

from ..comm.hybrid import HybridProcess, partition_owners
from ..comm.simmpi import SimMPI
from ..errors import ConfigurationError
from ..telemetry.spans import get_tracer, span as _span
from .backends import make_exchanger
from .config import RuntimeConfig
from .multigrid import fas_cycle


class SolverKernels:
    """Protocol for the solver-specific half of a distributed solve.

    State is always a ``{pid: (nlocal, nvar) array}`` dict; ``X`` an
    Exchanger (:mod:`repro.runtime.backends`); ``doms`` a ``{pid:
    DistributedDomain}`` dict.  Required attributes: ``name``,
    ``coarse_cfl_fraction``.  Kernels may also expose a ``layout``
    (:class:`~repro.solvers.gas.VariableLayout`): when present, the
    runtime derives every state width from it — shared-slab carving,
    exchange block sizes — instead of assuming a fixed variable count.
    Required methods:

    ``init_state(dom)``, ``volumes(dom)``,
    ``fix_restricted_state(dom, q)``, ``mask_forcing(dom, f)``,
    ``smooth(X, doms, qs, *, forcing, cfl, nsteps, overlap, in_cycle)``,
    ``defect(X, doms, qs, forcing)`` (completed residual minus forcing,
    ghost rows zeroed), ``apply_correction(comm, X, doms, qs, dqs)``,
    ``residual_norm(comm, X, doms, qs)``.

    Kernels objects must be picklable (plain config state only): the
    process backend ships them to spawned workers.
    """


class _DistributedOps:
    """Distributed :class:`~repro.runtime.multigrid.LevelOps` adapter.

    Implements the generic transfer algebra — volume-weighted state
    restriction, defect restriction, injection prolongation along the
    first-fine-member agglomerate maps — with exchange-adds completing
    the owner sums and exchange-copies refreshing coarse ghosts, while
    deferring every physics decision (BC fixup, forcing masks,
    correction guarding) to the kernels.
    """

    #: tags for the transfer-operator exchanges (solver smoothers use
    #: their historical tags; these are runtime-owned)
    TAG_RESTRICT_ADD = 31
    TAG_RESTRICT_COPY = 32
    TAG_FORCING_ADD = 33

    def __init__(self, comm, exchangers, doms, cluster_local, kernels,
                 overlap):
        self.comm = comm
        self.X = exchangers
        self.doms = doms
        self.cluster_local = cluster_local
        self.kernels = kernels
        self.overlap = overlap
        self.name = kernels.name
        self.coarse_cfl_fraction = kernels.coarse_cfl_fraction
        self.nlevels = len(doms)

    def clone(self, qs):
        return {p: a.copy() for p, a in qs.items()}

    def smooth(self, level, qs, forcing, cfl, nsteps):
        return self.kernels.smooth(
            self.X[level], self.doms[level], qs, forcing=forcing, cfl=cfl,
            nsteps=nsteps, overlap=self.overlap, in_cycle=True,
        )

    def defect(self, level, qs, forcing):
        return self.kernels.defect(self.X[level], self.doms[level], qs,
                                   forcing)

    def _restrict_sum(self, level, values, tag):
        """Owner-complete sum of per-fine-row ``values`` over
        agglomerates: local accumulate, then exchange-add (ghost coarse
        rows ship to their owners and zero)."""
        doms_c = self.doms[level + 1]
        cl = self.cluster_local[level]
        acc = {}
        for p, dom in self.doms[level].items():
            nvar = values[p].shape[1]
            a = np.zeros((doms_c[p].nlocal, nvar), dtype=np.float64)
            np.add.at(a, cl[p], values[p][: dom.nowned])
            acc[p] = a
        self.X[level + 1].add(acc, tag=tag)
        return acc

    def restrict_state(self, level, qs):
        kern = self.kernels
        doms_f, doms_c = self.doms[level], self.doms[level + 1]
        weighted = {
            p: qs[p][: dom.nowned]
            * kern.volumes(dom)[: dom.nowned, None]
            for p, dom in doms_f.items()
        }
        # _restrict_sum slices to nowned again; already-owned-only is fine
        acc = self._restrict_sum(level, weighted, self.TAG_RESTRICT_ADD)
        out = {}
        for p, dom in doms_c.items():
            qc = acc[p] / kern.volumes(dom)[:, None]
            out[p] = kern.fix_restricted_state(dom, qc)
        # coarse ghosts must carry the restricted state before R_c runs
        self.X[level + 1].copy(out, tag=self.TAG_RESTRICT_COPY)
        return out

    def coarse_forcing(self, level, q_c0, defect):
        kern = self.kernels
        doms_c = self.doms[level + 1]
        restricted = self._restrict_sum(level, defect, self.TAG_FORCING_ADD)
        rc = kern.defect(self.X[level + 1], doms_c, q_c0, None)
        return {
            p: kern.mask_forcing(dom, rc[p] - restricted[p])
            for p, dom in doms_c.items()
        }

    def apply_correction(self, level, qs, q_c, q_c0):
        # smoothers return ghost-fresh states and q_c0 was copy-refreshed
        # after restriction, so the coarse correction is already valid on
        # ghost agglomerates — no extra exchange needed here
        cl = self.cluster_local[level]
        dqs = {}
        for p, dom in self.doms[level].items():
            dqc = q_c[p] - q_c0[p]
            d = np.zeros_like(qs[p])
            d[: dom.nowned] = dqc[cl[p]]
            dqs[p] = d
        return self.kernels.apply_correction(
            self.comm, self.X[level], self.doms[level], qs, dqs
        )


def run_rank_cycles(comm, exchangers, doms, cluster_local, kernels, *,
                    ncycles: int, cfl: float, cycle: str = "W",
                    nu1: int = 1, nu2: int = 1,
                    coarse_cfl: float | None = None,
                    overlap: bool = False, smoothing_only: bool = False):
    """One rank's whole solve: init state, iterate cycles, slice owned.

    This is the picklable body shared by every backend — SimMPI rank
    threads (sim/hybrid) call it from the driver's closure, spawned
    process workers import it by name.  ``doms``/``cluster_local`` are
    per-level ``{pid: ...}`` dicts restricted to this rank's
    partitions; returns ``(owned, history)`` where ``owned`` is a list
    of ``(owned_global_ids, owned_rows)`` pairs.
    """
    pids = tuple(sorted(doms[0]))
    qs = {p: kernels.init_state(doms[0][p]) for p in pids}
    history = []
    # each rank pins its identity and clock (virtual under SimMPI, wall
    # in a worker), so spans (here and in comm.*) land on per-rank tracks
    with get_tracer().bind(rank=comm.rank, clock=lambda: comm.clock):
        for _ in range(ncycles):
            with _span(f"{kernels.name}.parallel_cycle", cat="solver"):
                if not smoothing_only:
                    ops = _DistributedOps(
                        comm, exchangers, doms, cluster_local, kernels,
                        overlap,
                    )
                    qs = fas_cycle(
                        ops, qs, cycle=cycle, nu1=nu1, nu2=nu2,
                        cfl=cfl, coarse_cfl=coarse_cfl,
                    )
                else:
                    qs = kernels.smooth(
                        exchangers[0], doms[0], qs, forcing=None,
                        cfl=cfl, nsteps=1, overlap=overlap,
                        in_cycle=False,
                    )
                history.append(kernels.residual_norm(
                    comm, exchangers[0], doms[0], qs
                ))
    owned = [
        (doms[0][p].halo.owned_global, qs[p][: doms[0][p].nowned])
        for p in pids
    ]
    return owned, history


class DistributedSolveDriver:
    """Run a domain hierarchy + kernels under a selected backend.

    Backend selection lives in a
    :class:`~repro.runtime.config.RuntimeConfig` (the legacy boolean
    keywords still work and seed an equivalent config):

    * ``sim``/``hybrid`` solves run on a :class:`SimMPI` world —
      :meth:`solve` builds it, or pass your own to :meth:`run`;
    * ``process`` solves run on a pool of spawned workers
      (:class:`~repro.runtime.process.ProcessPool`) launched lazily on
      first use and reused for the driver's lifetime — call
      :meth:`close` (or use the driver as a context manager) to tear
      the workers down.

    ``overlap=True`` switches the smoothers' per-stage ghost refresh to
    the posted-send / compute-interior / finish-boundary pattern (paper
    fig. 7); ``charge_compute=True`` additionally bills calibrated
    kernel FLOPs to each rank's virtual clock so SimMPI makespans
    expose the overlap benefit (rejected under ``process``, whose
    clock is real).

    ``sanitize=True`` arms the
    :class:`~repro.runtime.sanitizer.GhostSanitizer` on every
    exchanger: during each overlap window ghost slots carry a NaN
    canary and the state arrays are swapped for read-trapping guard
    views, so any kernel that touches ghost state before the matching
    ``finish()`` raises :class:`~repro.errors.GhostRaceError` instead
    of silently computing on stale data.

    ``smoothing_only=True`` preserves the historical single-level
    ``Parallel*`` contract — one plain smoothing step per outer cycle.
    Hierarchy-built drivers (``Parallel*.from_solver``) leave it False
    so a one-level hierarchy still runs the full cycle (``nu1 + nu2``
    smoothing steps through the in-cycle guarded path), matching the
    serial solvers' ``run_cycle`` at ``mg_levels=1``.
    """

    def __init__(self, hierarchy, kernels, qinf, *,
                 config: RuntimeConfig | None = None,
                 overlap: bool = False, charge_compute: bool = False,
                 smoothing_only: bool = False, sanitize: bool = False):
        if config is None:
            config = RuntimeConfig(
                overlap=overlap, charge_compute=charge_compute,
                sanitize=sanitize,
            )
        config = config.resolve(hierarchy.nparts)
        self.hierarchy = hierarchy
        self.kernels = kernels
        self.qinf = np.asarray(qinf, dtype=np.float64)
        self.config = config
        self.backend = config.backend
        self.nranks = config.nranks
        self.worker_timeout = config.worker_timeout
        self.overlap = config.overlap
        self.charge_compute = config.charge_compute
        self.smoothing_only = smoothing_only
        self.sanitize = config.sanitize
        self._pool = None

    @property
    def nparts(self) -> int:
        return self.hierarchy.nparts

    @property
    def nlevels(self) -> int:
        return self.hierarchy.nlevels

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Tear down the worker pool (no-op for thread backends; safe
        to call twice)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "DistributedSolveDriver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self):
        """The live worker pool, spawning one on first use.  Workers
        capture ``overlap``/``sanitize``/``smoothing_only`` at spawn."""
        if self._pool is None or self._pool.closed:
            from .process import ProcessPool

            layout = getattr(self.kernels, "layout", None)
            self._pool = ProcessPool(
                self.hierarchy, self.kernels,
                nvar=layout.nvar if layout is not None else len(self.qinf),
                overlap=self.overlap,
                smoothing_only=self.smoothing_only,
                sanitize=self.sanitize,
                timeout=self.worker_timeout,
            )
        return self._pool

    # -- solves --------------------------------------------------------------

    def solve(self, ncycles: int, *, cfl: float, cycle: str = "W",
              nu1: int = 1, nu2: int = 1,
              coarse_cfl: float | None = None):
        """Config-driven entry point: builds the right world for the
        selected backend; returns (global q, history)."""
        if self.backend == "process":
            return self._run_process(
                ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
                coarse_cfl=coarse_cfl,
            )
        return self.run(
            SimMPI(self.nranks), ncycles, cfl=cfl, cycle=cycle, nu1=nu1,
            nu2=nu2, coarse_cfl=coarse_cfl,
        )

    def run(self, world, ncycles: int, *, cfl: float, cycle: str = "W",
            nu1: int = 1, nu2: int = 1, coarse_cfl: float | None = None):
        """Iterate ``ncycles`` cycles on ``world``; returns
        (global q, history).

        One full cycle per outer cycle (a single-level hierarchy just
        smooths ``nu1 + nu2`` steps), unless ``smoothing_only`` pins the
        historical one-step-per-cycle ``Parallel*`` contract.
        """
        if self.backend == "process":
            raise ConfigurationError(
                "the process backend owns its worker world; call "
                "solve() instead of run(world, ...)"
            )
        hierarchy, kernels = self.hierarchy, self.kernels
        overlap, charging = self.overlap, self.charge_compute
        sanitize = self.sanitize
        smoothing_only = self.smoothing_only
        nparts, nlevels = self.nparts, self.nlevels
        if world.nranks == nparts:
            proc_of = {p: p for p in range(nparts)}
            hybrid = False
        elif world.nranks < nparts:
            proc_of = partition_owners(nparts, world.nranks)
            hybrid = True
        else:
            raise ConfigurationError(
                f"{world.nranks} ranks for {nparts} partitions — the "
                "driver needs at least one partition per rank"
            )

        def body(comm):
            pids = tuple(sorted(
                p for p in range(nparts) if proc_of[p] == comm.rank
            ))
            doms = [
                {p: hierarchy.levels[lev].domains[p] for p in pids}
                for lev in range(nlevels)
            ]
            if hybrid:
                exchangers = [
                    make_exchanger("hybrid", comm, process=HybridProcess(
                        rank=comm.rank,
                        part_ids=pids,
                        plans={
                            p: hierarchy.levels[lev].domains[p].halo.plan
                            for p in range(nparts)
                        },
                        proc_of=proc_of,
                    ))
                    for lev in range(nlevels)
                ]
            else:
                exchangers = [
                    make_exchanger("plan", comm, plans={
                        p: doms[lev][p].halo.plan for p in pids
                    })
                    for lev in range(nlevels)
                ]
            for x in exchangers:
                x.charging = charging
                x.sanitize = sanitize
            cluster_local = [
                {p: hierarchy.cluster_local[lev][p] for p in pids}
                for lev in range(nlevels - 1)
            ]
            return run_rank_cycles(
                comm, exchangers, doms, cluster_local, kernels,
                ncycles=ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
                coarse_cfl=coarse_cfl, overlap=overlap,
                smoothing_only=smoothing_only,
            )

        results = world.run(body)
        q_global = np.empty(
            (hierarchy.levels[0].nglobal, len(self.qinf)), dtype=np.float64
        )
        for owned, _history in results:
            for gids, q_owned in owned:
                q_global[gids] = q_owned
        return q_global, results[0][1]

    def _run_process(self, ncycles: int, *, cfl: float, cycle: str,
                     nu1: int, nu2: int, coarse_cfl: float | None):
        """Run one solve on the (lazily spawned, reused) worker pool."""
        pool = self._ensure_pool()
        q_global, history = pool.run(
            ncycles=ncycles, cfl=cfl, cycle=cycle, nu1=nu1, nu2=nu2,
            coarse_cfl=coarse_cfl,
        )
        return q_global, history
