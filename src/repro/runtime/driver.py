"""The one distributed cycle loop for both solvers (tentpole piece 4).

:class:`DistributedSolveDriver` owns everything the two historical
``Parallel*`` classes each reimplemented: backend selection (pure MPI
when ranks == partitions, hybrid master-thread when ranks <
partitions), per-rank state initialization, the cycle loop with
telemetry spans, the distributed FAS adapter over
:func:`repro.runtime.multigrid.fas_cycle`, residual-history collection
and the final owned-row gather.

Solver physics enters through a *kernels* object (duck-typed; see
:class:`SolverKernels`) whose methods all operate on per-partition
dicts, so one partition per rank (pure MPI) and many partitions per
process (hybrid) run the same code.
"""

from __future__ import annotations

import numpy as np

from ..comm.hybrid import HybridProcess, partition_owners
from ..errors import ConfigurationError
from ..telemetry.spans import get_tracer, span as _span
from .backends import HybridExchanger, PlanExchanger
from .multigrid import fas_cycle


class SolverKernels:
    """Protocol for the solver-specific half of a distributed solve.

    State is always a ``{pid: (nlocal, nvar) array}`` dict; ``X`` an
    Exchanger (:mod:`repro.runtime.backends`); ``doms`` a ``{pid:
    DistributedDomain}`` dict.  Required attributes: ``name``,
    ``coarse_cfl_fraction``.  Required methods:

    ``init_state(dom)``, ``volumes(dom)``,
    ``fix_restricted_state(dom, q)``, ``mask_forcing(dom, f)``,
    ``smooth(X, doms, qs, *, forcing, cfl, nsteps, overlap, in_cycle)``,
    ``defect(X, doms, qs, forcing)`` (completed residual minus forcing,
    ghost rows zeroed), ``apply_correction(comm, X, doms, qs, dqs)``,
    ``residual_norm(comm, X, doms, qs)``.
    """


class _DistributedOps:
    """Distributed :class:`~repro.runtime.multigrid.LevelOps` adapter.

    Implements the generic transfer algebra — volume-weighted state
    restriction, defect restriction, injection prolongation along the
    first-fine-member agglomerate maps — with exchange-adds completing
    the owner sums and exchange-copies refreshing coarse ghosts, while
    deferring every physics decision (BC fixup, forcing masks,
    correction guarding) to the kernels.
    """

    #: tags for the transfer-operator exchanges (solver smoothers use
    #: their historical tags; these are runtime-owned)
    TAG_RESTRICT_ADD = 31
    TAG_RESTRICT_COPY = 32
    TAG_FORCING_ADD = 33

    def __init__(self, comm, exchangers, doms, cluster_local, kernels,
                 overlap):
        self.comm = comm
        self.X = exchangers
        self.doms = doms
        self.cluster_local = cluster_local
        self.kernels = kernels
        self.overlap = overlap
        self.name = kernels.name
        self.coarse_cfl_fraction = kernels.coarse_cfl_fraction
        self.nlevels = len(doms)

    def clone(self, qs):
        return {p: a.copy() for p, a in qs.items()}

    def smooth(self, level, qs, forcing, cfl, nsteps):
        return self.kernels.smooth(
            self.X[level], self.doms[level], qs, forcing=forcing, cfl=cfl,
            nsteps=nsteps, overlap=self.overlap, in_cycle=True,
        )

    def defect(self, level, qs, forcing):
        return self.kernels.defect(self.X[level], self.doms[level], qs,
                                   forcing)

    def _restrict_sum(self, level, values, tag):
        """Owner-complete sum of per-fine-row ``values`` over
        agglomerates: local accumulate, then exchange-add (ghost coarse
        rows ship to their owners and zero)."""
        doms_c = self.doms[level + 1]
        cl = self.cluster_local[level]
        acc = {}
        for p, dom in self.doms[level].items():
            nvar = values[p].shape[1]
            a = np.zeros((doms_c[p].nlocal, nvar), dtype=np.float64)
            np.add.at(a, cl[p], values[p][: dom.nowned])
            acc[p] = a
        self.X[level + 1].add(acc, tag=tag)
        return acc

    def restrict_state(self, level, qs):
        kern = self.kernels
        doms_f, doms_c = self.doms[level], self.doms[level + 1]
        weighted = {
            p: qs[p][: dom.nowned]
            * kern.volumes(dom)[: dom.nowned, None]
            for p, dom in doms_f.items()
        }
        # _restrict_sum slices to nowned again; already-owned-only is fine
        acc = self._restrict_sum(level, weighted, self.TAG_RESTRICT_ADD)
        out = {}
        for p, dom in doms_c.items():
            qc = acc[p] / kern.volumes(dom)[:, None]
            out[p] = kern.fix_restricted_state(dom, qc)
        # coarse ghosts must carry the restricted state before R_c runs
        self.X[level + 1].copy(out, tag=self.TAG_RESTRICT_COPY)
        return out

    def coarse_forcing(self, level, q_c0, defect):
        kern = self.kernels
        doms_c = self.doms[level + 1]
        restricted = self._restrict_sum(level, defect, self.TAG_FORCING_ADD)
        rc = kern.defect(self.X[level + 1], doms_c, q_c0, None)
        return {
            p: kern.mask_forcing(dom, rc[p] - restricted[p])
            for p, dom in doms_c.items()
        }

    def apply_correction(self, level, qs, q_c, q_c0):
        # smoothers return ghost-fresh states and q_c0 was copy-refreshed
        # after restriction, so the coarse correction is already valid on
        # ghost agglomerates — no extra exchange needed here
        cl = self.cluster_local[level]
        dqs = {}
        for p, dom in self.doms[level].items():
            dqc = q_c[p] - q_c0[p]
            d = np.zeros_like(qs[p])
            d[: dom.nowned] = dqc[cl[p]]
            dqs[p] = d
        return self.kernels.apply_correction(
            self.comm, self.X[level], self.doms[level], qs, dqs
        )


class DistributedSolveDriver:
    """Run a domain hierarchy + kernels on a SimMPI world.

    ``overlap=True`` switches the smoothers' per-stage ghost refresh to
    the posted-send / compute-interior / finish-boundary pattern (paper
    fig. 7); ``charge_compute=True`` additionally bills calibrated
    kernel FLOPs to each rank's virtual clock so SimMPI makespans
    expose the overlap benefit.

    ``sanitize=True`` arms the
    :class:`~repro.runtime.sanitizer.GhostSanitizer` on every
    exchanger: during each overlap window ghost slots carry a NaN
    canary and the state arrays are swapped for read-trapping guard
    views, so any kernel that touches ghost state before the matching
    ``finish()`` raises :class:`~repro.errors.GhostRaceError` instead
    of silently computing on stale data.

    ``smoothing_only=True`` preserves the historical single-level
    ``Parallel*`` contract — one plain smoothing step per outer cycle.
    Hierarchy-built drivers (``Parallel*.from_solver``) leave it False
    so a one-level hierarchy still runs the full cycle (``nu1 + nu2``
    smoothing steps through the in-cycle guarded path), matching the
    serial solvers' ``run_cycle`` at ``mg_levels=1``.
    """

    def __init__(self, hierarchy, kernels, qinf, *, overlap: bool = False,
                 charge_compute: bool = False, smoothing_only: bool = False,
                 sanitize: bool = False):
        self.hierarchy = hierarchy
        self.kernels = kernels
        self.qinf = np.asarray(qinf, dtype=np.float64)
        self.overlap = overlap
        self.charge_compute = charge_compute
        self.smoothing_only = smoothing_only
        self.sanitize = sanitize

    @property
    def nparts(self) -> int:
        return self.hierarchy.nparts

    @property
    def nlevels(self) -> int:
        return self.hierarchy.nlevels

    def run(self, world, ncycles: int, *, cfl: float, cycle: str = "W",
            nu1: int = 1, nu2: int = 1, coarse_cfl: float | None = None):
        """Iterate ``ncycles`` cycles; returns (global q, history).

        One full cycle per outer cycle (a single-level hierarchy just
        smooths ``nu1 + nu2`` steps), unless ``smoothing_only`` pins the
        historical one-step-per-cycle ``Parallel*`` contract.
        """
        hierarchy, kernels, qinf = self.hierarchy, self.kernels, self.qinf
        overlap, charging = self.overlap, self.charge_compute
        sanitize = self.sanitize
        smoothing_only = self.smoothing_only
        nparts, nlevels = self.nparts, self.nlevels
        if world.nranks == nparts:
            proc_of = {p: p for p in range(nparts)}
            hybrid = False
        elif world.nranks < nparts:
            proc_of = partition_owners(nparts, world.nranks)
            hybrid = True
        else:
            raise ConfigurationError(
                f"{world.nranks} ranks for {nparts} partitions — the "
                "driver needs at least one partition per rank"
            )

        def body(comm):
            pids = tuple(sorted(
                p for p in range(nparts) if proc_of[p] == comm.rank
            ))
            doms = [
                {p: hierarchy.levels[lev].domains[p] for p in pids}
                for lev in range(nlevels)
            ]
            if hybrid:
                exchangers = [
                    HybridExchanger(comm, HybridProcess(
                        rank=comm.rank,
                        part_ids=pids,
                        plans={
                            p: hierarchy.levels[lev].domains[p].halo.plan
                            for p in range(nparts)
                        },
                        proc_of=proc_of,
                    ))
                    for lev in range(nlevels)
                ]
            else:
                exchangers = [
                    {p: doms[lev][p].halo.plan for p in pids}
                    for lev in range(nlevels)
                ]
                exchangers = [PlanExchanger(comm, plans)
                              for plans in exchangers]
            for x in exchangers:
                x.charging = charging
                x.sanitize = sanitize
            cluster_local = [
                {p: hierarchy.cluster_local[lev][p] for p in pids}
                for lev in range(nlevels - 1)
            ]
            qs = {p: kernels.init_state(doms[0][p]) for p in pids}
            history = []
            # each rank thread pins its identity and virtual clock, so
            # spans (here and in comm.*) land on per-rank tracks
            with get_tracer().bind(rank=comm.rank,
                                   clock=lambda: comm.clock):
                for _ in range(ncycles):
                    with _span(f"{kernels.name}.parallel_cycle",
                               cat="solver"):
                        if not smoothing_only:
                            ops = _DistributedOps(
                                comm, exchangers, doms, cluster_local,
                                kernels, overlap,
                            )
                            qs = fas_cycle(
                                ops, qs, cycle=cycle, nu1=nu1, nu2=nu2,
                                cfl=cfl, coarse_cfl=coarse_cfl,
                            )
                        else:
                            qs = kernels.smooth(
                                exchangers[0], doms[0], qs, forcing=None,
                                cfl=cfl, nsteps=1, overlap=overlap,
                                in_cycle=False,
                            )
                        history.append(kernels.residual_norm(
                            comm, exchangers[0], doms[0], qs
                        ))
            owned = [
                (doms[0][p].halo.owned_global,
                 qs[p][: doms[0][p].nowned])
                for p in pids
            ]
            return owned, history

        results = world.run(body)
        q_global = np.empty(
            (hierarchy.levels[0].nglobal, len(qinf)), dtype=np.float64
        )
        for owned, _history in results:
            for gids, q_owned in owned:
                q_global[gids] = q_owned
        return q_global, results[0][1]
