"""Partition quality metrics: cut, balance, surface-to-volume.

The paper leans on two quality statements: METIS-style partitions keep
implicit lines intact while balancing per-level work, and SFC-derived
partitions have surface-to-volume ratios that "track that of an idealized
cubic partitioner" (reference [18]).  These metrics quantify both, and
they calibrate the halo-size laws used by the performance model at
72M-point scale.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph


def edge_cut(graph: Graph, part: np.ndarray) -> float:
    """Total weight of edges whose endpoints live in different parts."""
    part = np.asarray(part)
    edges, wgts = graph.edge_list()
    return float(wgts[part[edges[:, 0]] != part[edges[:, 1]]].sum())


def part_weights(graph: Graph, part: np.ndarray, nparts: int) -> np.ndarray:
    return np.bincount(np.asarray(part), weights=graph.vwgt, minlength=nparts)


def imbalance(graph: Graph, part: np.ndarray, nparts: int) -> float:
    """``max part weight / ideal - 1``; 0 is perfect balance."""
    w = part_weights(graph, part, nparts)
    ideal = graph.vwgt.sum() / nparts
    return float(w.max() / ideal - 1.0)


def boundary_counts(graph: Graph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Per-part count of vertices adjacent to another part (halo surface)."""
    part = np.asarray(part)
    edges, _ = graph.edge_list()
    cross = part[edges[:, 0]] != part[edges[:, 1]]
    boundary_vertices = np.unique(edges[cross].ravel())
    return np.bincount(part[boundary_vertices], minlength=nparts)


def neighbor_counts(graph: Graph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Number of distinct partner parts per part (communication degree)."""
    part = np.asarray(part)
    edges, _ = graph.edge_list()
    pu, pv = part[edges[:, 0]], part[edges[:, 1]]
    cross = pu != pv
    pairs = np.unique(
        np.column_stack(
            [np.minimum(pu[cross], pv[cross]), np.maximum(pu[cross], pv[cross])]
        ),
        axis=0,
    )
    out = np.zeros(nparts, dtype=np.int64)
    for a, b in pairs:
        out[a] += 1
        out[b] += 1
    return out


def surface_to_volume(graph: Graph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Per-part ratio of boundary vertices to owned vertices."""
    counts = np.bincount(np.asarray(part), minlength=nparts).astype(float)
    surf = boundary_counts(graph, part, nparts).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(counts > 0, surf / np.maximum(counts, 1), np.inf)
    return out


def ideal_cubic_surface_to_volume(cells_per_part: float) -> float:
    """S/V of an idealized cubic partition of ``cells_per_part`` cells.

    A cube of side ``s = cells**(1/3)`` has ``6 s^2`` boundary cells (one
    layer), so S/V = 6 / s.  Reference [18] uses this as the yardstick
    for SFC partitions.
    """
    if cells_per_part <= 0:
        raise ValueError("cells_per_part must be positive")
    side = cells_per_part ** (1.0 / 3.0)
    return min(6.0 / side, 1.0)


def halo_surface_law(npoints: int, nparts: int, c_surface: float = 6.0) -> float:
    """Expected halo size (points) of one partition: ``c * (N/P)^(2/3)``.

    The constant is measured on real partitioner output (tests fit it);
    the performance model extrapolates with it to the paper's 72M-point
    mesh.  Capped at the partition size itself.
    """
    if nparts < 1 or npoints < 0:
        raise ValueError("bad npoints/nparts")
    per = npoints / nparts
    return float(min(c_surface * per ** (2.0 / 3.0), per))
