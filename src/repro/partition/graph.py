"""Weighted adjacency graphs with contraction (paper figure 6b).

NSU3D feeds the adjacency graph of each grid level to METIS.  Where
implicit line solvers are in use, the mesh's line structures must never be
split across partitions, so the graph is first *contracted along the
lines*: each line collapses to a single vertex whose weight is the sum of
its members' weights, and parallel edges merge with summed weights.  The
contracted weighted graph is what gets partitioned; the fine partition is
recovered by projection.

:class:`Graph` is the CSR structure shared by the partitioner, the
agglomeration multigrid coarsener and the mesh modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.arrays import csr_from_edges


@dataclass
class Graph:
    """Undirected weighted graph in CSR form.

    ``adjwgt`` aligns with ``adjncy``; both directions of an edge carry
    the same weight.  ``vwgt`` is the vertex (work) weight used for
    balance constraints.
    """

    nvert: int
    xadj: np.ndarray
    adjncy: np.ndarray
    vwgt: np.ndarray
    adjwgt: np.ndarray

    # -- construction -----------------------------------------------------------

    @staticmethod
    def from_edges(
        nvert: int,
        edges: np.ndarray,
        vwgt: np.ndarray | None = None,
        ewgt: np.ndarray | None = None,
    ) -> "Graph":
        edges = np.asarray(edges, dtype=np.int64)
        if len(edges):
            same = edges[:, 0] == edges[:, 1]
            if same.any():
                raise ValueError("self-loops are not allowed")
        xadj, adjncy, eind = csr_from_edges(nvert, edges)
        if ewgt is None:
            adjwgt = np.ones(len(adjncy), dtype=np.float64)
        else:
            ewgt = np.asarray(ewgt, dtype=np.float64)
            if len(ewgt) != len(edges):
                raise ValueError("ewgt must have one entry per edge")
            adjwgt = ewgt[eind]
        if vwgt is None:
            vwgt = np.ones(nvert, dtype=np.float64)
        else:
            vwgt = np.asarray(vwgt, dtype=np.float64)
            if len(vwgt) != nvert:
                raise ValueError("vwgt must have one entry per vertex")
        return Graph(nvert, xadj, adjncy, vwgt.copy(), adjwgt)

    # -- queries ---------------------------------------------------------------

    @property
    def nedges(self) -> int:
        """Undirected edge count."""
        return len(self.adjncy) // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.xadj)

    def total_edge_weight(self) -> float:
        return float(self.adjwgt.sum()) / 2.0

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once: (edges (E,2), weights (E,))."""
        src = np.repeat(np.arange(self.nvert), np.diff(self.xadj))
        mask = src < self.adjncy
        return (
            np.column_stack([src[mask], self.adjncy[mask]]),
            self.adjwgt[mask],
        )

    # -- contraction -------------------------------------------------------------

    def contract(self, cluster: np.ndarray, ncluster: int | None = None) -> "Graph":
        """Merge vertices sharing a cluster id.

        Cluster vertex weights are the sums of member weights; parallel
        edges merge with summed weights; intra-cluster edges vanish.
        """
        cluster = np.asarray(cluster, dtype=np.int64)
        if len(cluster) != self.nvert:
            raise ValueError("cluster must label every vertex")
        if ncluster is None:
            ncluster = int(cluster.max()) + 1 if self.nvert else 0
        if cluster.size and (cluster.min() < 0 or cluster.max() >= ncluster):
            raise ValueError("cluster ids out of range")

        vwgt = np.bincount(cluster, weights=self.vwgt, minlength=ncluster)

        edges, wgts = self.edge_list()
        cu = cluster[edges[:, 0]]
        cv = cluster[edges[:, 1]]
        keep = cu != cv
        cu, cv, wgts = cu[keep], cv[keep], wgts[keep]
        lo = np.minimum(cu, cv)
        hi = np.maximum(cu, cv)
        key = lo * ncluster + hi
        order = np.argsort(key)
        key, lo, hi, wgts = key[order], lo[order], hi[order], wgts[order]
        if len(key):
            first = np.ones(len(key), dtype=bool)
            first[1:] = key[1:] != key[:-1]
            group = np.cumsum(first) - 1
            merged_w = np.bincount(group, weights=wgts)
            merged_edges = np.column_stack([lo[first], hi[first]])
        else:
            merged_w = np.empty(0)
            merged_edges = np.empty((0, 2), dtype=np.int64)

        return Graph.from_edges(ncluster, merged_edges, vwgt=vwgt, ewgt=merged_w)

    def subgraph(self, mask: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``mask``; returns (subgraph, old ids)."""
        mask = np.asarray(mask, dtype=bool)
        old_ids = np.flatnonzero(mask)
        new_of = np.full(self.nvert, -1, dtype=np.int64)
        new_of[old_ids] = np.arange(len(old_ids))
        edges, wgts = self.edge_list()
        keep = mask[edges[:, 0]] & mask[edges[:, 1]]
        sub_edges = new_of[edges[keep]]
        sub = Graph.from_edges(
            len(old_ids), sub_edges, vwgt=self.vwgt[old_ids], ewgt=wgts[keep]
        )
        return sub, old_ids


def contract_lines(graph: Graph, lines: list) -> tuple[Graph, np.ndarray]:
    """Collapse each implicit line to a single weighted vertex (fig. 6b).

    ``lines`` is a list of integer arrays (each a line's vertex ids, which
    must be disjoint).  Vertices on no line become singleton clusters.
    Returns the contracted graph and the cluster id of every fine vertex.
    """
    cluster = np.full(graph.nvert, -1, dtype=np.int64)
    next_id = 0
    for line in lines:
        line = np.asarray(line, dtype=np.int64)
        if (cluster[line] != -1).any():
            raise ValueError("lines must be disjoint")
        cluster[line] = next_id
        next_id += 1
    singles = np.flatnonzero(cluster == -1)
    cluster[singles] = next_id + np.arange(len(singles))
    ncluster = next_id + len(singles)
    return graph.contract(cluster, ncluster), cluster


def project_partition(cluster: np.ndarray, coarse_part: np.ndarray) -> np.ndarray:
    """Map a contracted-graph partition back to fine vertices."""
    return np.asarray(coarse_part)[np.asarray(cluster)]
