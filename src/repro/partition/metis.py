"""A from-scratch multilevel k-way graph partitioner.

The paper partitions every multigrid level's adjacency graph with METIS
(Karypis & Kumar, reference [10]).  METIS itself is a compiled library we
do not ship, so this module implements the same *multilevel* scheme the
METIS paper describes:

1. **Coarsening** — repeated heavy-edge matching contracts the graph
   until it is small;
2. **Initial partitioning** — recursive bisection on the coarsest graph,
   each bisection by greedy graph growing followed by
   Fiduccia-Mattheyses-style boundary refinement;
3. **Uncoarsening** — the partition is projected back level by level,
   with greedy k-way boundary refinement at every step.

Vertex weights (needed for line-contracted graphs, fig. 6b, and for
Cart3D's 2.1x cut-cell weighting) and edge weights are honored
throughout.  Quality is measured by :mod:`repro.partition.quality`; tests
assert parity with spatial partitioning baselines on structured grids.
"""

from __future__ import annotations

import heapq

import numpy as np

from .graph import Graph

#: Stop coarsening when the graph is this small (per target part).
_COARSEST_VERTICES_PER_PART = 15
#: Abandon coarsening if matching shrinks the graph by less than this.
_MIN_SHRINK = 0.9


def partition_graph(
    graph: Graph,
    nparts: int,
    seed: int = 0,
    imbalance: float = 0.05,
    refine_passes: int = 4,
) -> np.ndarray:
    """Partition ``graph`` into ``nparts`` balanced parts, minimizing cut.

    Returns an integer part id per vertex.  ``imbalance`` bounds
    ``max part weight / ideal part weight - 1``.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if graph.nvert == 0:
        return np.empty(0, dtype=np.int64)
    if nparts == 1:
        return np.zeros(graph.nvert, dtype=np.int64)
    if nparts > graph.nvert:
        raise ValueError(f"cannot cut {graph.nvert} vertices into {nparts} parts")
    rng = np.random.default_rng(seed)

    # 1. coarsen
    levels: list[tuple[Graph, np.ndarray]] = []  # (finer graph, cluster map)
    g = graph
    target = max(_COARSEST_VERTICES_PER_PART * nparts, 40)
    while g.nvert > target:
        cluster, ncluster = heavy_edge_matching(g, rng)
        if ncluster > g.nvert * _MIN_SHRINK:
            break
        levels.append((g, cluster))
        g = g.contract(cluster, ncluster)

    # 2. initial partition of the coarsest graph
    part = recursive_bisection(g, nparts, rng)
    part = kway_refine(g, part, nparts, imbalance, refine_passes)

    # 3. uncoarsen and refine
    for finer, cluster in reversed(levels):
        part = part[cluster]
        part = kway_refine(finer, part, nparts, imbalance, refine_passes)
    return part


# ---------------------------------------------------------------------------
# coarsening
# ---------------------------------------------------------------------------


def heavy_edge_matching(graph: Graph, rng) -> tuple[np.ndarray, int]:
    """Match each vertex with its heaviest unmatched neighbor.

    Returns (cluster id per vertex, number of clusters); matched pairs
    share a cluster, unmatched vertices are singletons.
    """
    n = graph.nvert
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt
    for v in order:
        if match[v] != -1:
            continue
        nbrs = adjncy[xadj[v] : xadj[v + 1]]
        wgts = adjwgt[xadj[v] : xadj[v + 1]]
        best, best_w = -1, -1.0
        for u, w in zip(nbrs, wgts):
            if match[u] == -1 and u != v and w > best_w:
                best, best_w = u, w
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v
    cluster = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cluster[v] == -1:
            cluster[v] = next_id
            if match[v] != v:
                cluster[match[v]] = next_id
            next_id += 1
    return cluster, next_id


# ---------------------------------------------------------------------------
# initial partitioning: recursive bisection by greedy growing + FM
# ---------------------------------------------------------------------------


def recursive_bisection(graph: Graph, nparts: int, rng) -> np.ndarray:
    """Recursive bisection into ``nparts`` (any k, weighted splits)."""
    part = np.zeros(graph.nvert, dtype=np.int64)

    def recurse(sub: Graph, ids: np.ndarray, k: int, base: int):
        if k == 1:
            part[ids] = base
            return
        k_left = k // 2
        frac = k_left / k
        side = grow_bisection(sub, frac, rng)
        side = fm_refine_bisection(sub, side, frac)
        left_mask = ~side
        left, left_ids = sub.subgraph(left_mask)
        right, right_ids = sub.subgraph(side)
        recurse(left, ids[left_ids], k_left, base)
        recurse(right, ids[right_ids], k - k_left, base + k_left)

    recurse(graph, np.arange(graph.nvert), nparts, 0)
    return part


def grow_bisection(graph: Graph, frac: float, rng) -> np.ndarray:
    """Greedy graph growing: grow side-0 to ``frac`` of total weight.

    Returns a boolean array, True = side 1.  Handles disconnected graphs
    by reseeding.
    """
    n = graph.nvert
    total = graph.vwgt.sum()
    want = frac * total
    in_zero = np.zeros(n, dtype=bool)
    grown = 0.0
    heap: list = []
    visited = np.zeros(n, dtype=bool)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt

    def push_neighbors(v):
        for u, w in zip(adjncy[xadj[v] : xadj[v + 1]], adjwgt[xadj[v] : xadj[v + 1]]):
            if not visited[u]:
                heapq.heappush(heap, (-w, int(u)))

    remaining = list(rng.permutation(n))
    while grown < want:
        if not heap:
            while remaining and visited[remaining[-1]]:
                remaining.pop()
            if not remaining:
                break
            seed = remaining.pop()
            visited[seed] = True
            in_zero[seed] = True
            grown += graph.vwgt[seed]
            push_neighbors(seed)
            continue
        _, v = heapq.heappop(heap)
        if visited[v]:
            continue
        visited[v] = True
        in_zero[v] = True
        grown += graph.vwgt[v]
        push_neighbors(v)
    return ~in_zero


def fm_refine_bisection(
    graph: Graph, side: np.ndarray, frac: float, passes: int = 4
) -> np.ndarray:
    """Greedy FM-style 2-way refinement of a bisection.

    Each pass first *rebalances* — while either side exceeds its band it
    moves the least-damaging boundary vertex off the heavy side, whatever
    the gain — then makes cut-improving moves that stay inside the bands.
    """
    side = side.copy()
    total = graph.vwgt.sum()
    target = np.array([frac * total, (1 - frac) * total])
    lo, hi = target * 0.9, target * 1.1
    weights = np.array(
        [graph.vwgt[~side].sum(), graph.vwgt[side].sum()], dtype=float
    )
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt

    def compute_gains():
        ext = np.zeros(graph.nvert)
        internal = np.zeros(graph.nvert)
        src = np.repeat(np.arange(graph.nvert), np.diff(xadj))
        same = side[src] == side[adjncy]
        np.add.at(internal, src[same], adjwgt[same])
        np.add.at(ext, src[~same], adjwgt[~same])
        return ext - internal

    def apply_move(v, gains):
        s = int(side[v])
        t = 1 - s
        w = graph.vwgt[v]
        side[v] = bool(t)
        weights[s] -= w
        weights[t] += w
        for u, wgt in zip(
            adjncy[xadj[v] : xadj[v + 1]], adjwgt[xadj[v] : xadj[v + 1]]
        ):
            if side[u] == t:
                gains[u] -= 2 * wgt
            else:
                gains[u] += 2 * wgt
        gains[v] = -gains[v]

    for _ in range(passes):
        gains = compute_gains()

        # phase 1: rebalance, ignoring gain sign
        guard = graph.nvert
        while guard > 0 and (weights > hi).any():
            guard -= 1
            s = int(np.argmax(weights - hi))
            candidates = np.flatnonzero(side == bool(s))
            if len(candidates) <= 1:
                break
            v = candidates[np.argmax(gains[candidates])]
            if weights[s] - graph.vwgt[v] < graph.vwgt[candidates].min() * 0.5:
                break
            apply_move(v, gains)

        # phase 2: improving moves inside the bands
        moved_any = False
        order = np.argsort(-gains)
        for v in order:
            if gains[v] <= 0:
                break
            s = int(side[v])
            t = 1 - s
            w = graph.vwgt[v]
            if weights[s] - w < lo[s] or weights[t] + w > hi[t]:
                continue
            apply_move(v, gains)
            moved_any = True
        if not moved_any and (weights <= hi).all():
            break
    return side


# ---------------------------------------------------------------------------
# k-way refinement
# ---------------------------------------------------------------------------


def kway_refine(
    graph: Graph,
    part: np.ndarray,
    nparts: int,
    imbalance: float,
    passes: int,
) -> np.ndarray:
    """Greedy k-way boundary refinement under a balance constraint."""
    part = part.astype(np.int64, copy=True)
    total = graph.vwgt.sum()
    max_weight = (1.0 + imbalance) * total / nparts
    weights = np.bincount(part, weights=graph.vwgt, minlength=nparts)
    xadj, adjncy, adjwgt = graph.xadj, graph.adjncy, graph.adjwgt

    # an overweight partition may need many drain moves; scale the pass
    # budget with how far out of balance the projection left us
    if weights.max() > max_weight:
        passes = max(passes, int(np.ceil(weights.max() / max_weight)) * 8)

    for _ in range(passes):
        src = np.repeat(np.arange(graph.nvert), np.diff(xadj))
        boundary = np.unique(src[part[src] != part[adjncy]])
        moved = 0
        for v in boundary:
            p = part[v]
            nbrs = adjncy[xadj[v] : xadj[v + 1]]
            wgts = adjwgt[xadj[v] : xadj[v + 1]]
            conn: dict[int, float] = {}
            for u, w in zip(nbrs, wgts):
                q = part[u]
                conn[q] = conn.get(q, 0.0) + w
            internal = conn.get(p, 0.0)
            best_q, best_gain = -1, 0.0
            w_v = graph.vwgt[v]
            for q, w in conn.items():
                if q == p:
                    continue
                if weights[q] + w_v > max_weight:
                    continue
                gain = w - internal
                # strictly positive gain, or zero-gain move that improves
                # balance (drains an overweight part)
                better_balance = weights[p] > max_weight and weights[q] + w_v <= max_weight
                if gain > best_gain or (gain == best_gain == 0.0 and better_balance):
                    best_q, best_gain = q, gain
            if best_q >= 0 and (best_gain > 0 or weights[p] > max_weight):
                part[v] = best_q
                weights[p] -= w_v
                weights[best_q] += w_v
                moved += 1
        if moved == 0:
            break
    return part
