"""Space-filling-curve segment partitioner (paper section V, ref. [18]).

Cart3D partitions its Cartesian meshes "on-the-fly as the SFC-ordered
mesh file is read": thanks to the locality of the Peano-Hilbert (or
Morton) ordering, simply dividing the curve into consecutive segments of
equal weight produces compact, predominantly rectangular subdomains whose
surface-to-volume ratio tracks an idealized cubic partitioner.

Cut cells are more expensive than regular Cartesian hexahedra, so they
carry a larger work weight — the paper's SSLV example weights cut cells
2.1x (figure 12).
"""

from __future__ import annotations

import numpy as np

#: The paper's work weight for a cut cell relative to an un-cut hex.
CUT_CELL_WEIGHT = 2.1


def sfc_partition(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Split an SFC-ordered weight sequence into ``nparts`` segments.

    ``weights[i]`` is the work of the i-th cell *in SFC order*.  Returns
    the part id of every cell; part ids are non-decreasing along the
    curve (each part is one contiguous curve segment).

    The split points are the positions where the cumulative weight
    crosses multiples of ``total / nparts`` — the standard chains-on-
    chains heuristic, optimal to within one cell for smooth weights.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    n = len(weights)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if nparts > n:
        raise ValueError(f"cannot cut {n} cells into {nparts} parts")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    cum = np.cumsum(weights)
    total = cum[-1]
    if total <= 0:
        # degenerate: equal-count split
        return (np.arange(n) * nparts) // n
    # part of cell i: how many targets its cumulative midpoint has passed
    mid = cum - weights / 2.0
    part = np.minimum((mid / total * nparts).astype(np.int64), nparts - 1)
    return _fix_empty_parts(part, nparts)


def _fix_empty_parts(part: np.ndarray, nparts: int) -> np.ndarray:
    """Guarantee every part owns at least one cell (steal from neighbors
    along the curve); keeps parts contiguous."""
    counts = np.bincount(part, minlength=nparts)
    if (counts > 0).all():
        return part
    # rebuild boundaries: give every part at least one cell
    n = len(part)
    bounds = np.searchsorted(part, np.arange(nparts))  # first index of each part
    bounds = np.append(bounds, n)
    for p in range(1, nparts + 1):
        if bounds[p] <= bounds[p - 1]:
            bounds[p] = min(bounds[p - 1] + 1, n)
    # walk backwards to ensure the tail has room
    for p in range(nparts - 1, -1, -1):
        if bounds[p] >= bounds[p + 1]:
            bounds[p] = bounds[p + 1] - 1
    out = np.empty(n, dtype=np.int64)
    for p in range(nparts):
        out[bounds[p] : bounds[p + 1]] = p
    return out


def cell_weights(is_cut: np.ndarray, cut_weight: float = CUT_CELL_WEIGHT) -> np.ndarray:
    """Work weights for Cartesian cells: 1 for hexes, ``cut_weight`` for
    cut cells."""
    is_cut = np.asarray(is_cut, dtype=bool)
    return np.where(is_cut, cut_weight, 1.0)


def partition_bounds(part: np.ndarray, nparts: int) -> np.ndarray:
    """Start index of each contiguous segment (plus the end sentinel)."""
    part = np.asarray(part)
    if len(part) and (np.diff(part) < 0).any():
        raise ValueError("part is not contiguous along the curve")
    bounds = np.searchsorted(part, np.arange(nparts))
    return np.append(bounds, len(part))
