"""Greedy coarse/fine partition matching (paper section III).

NSU3D partitions each multigrid level *independently*, then matches coarse
and fine partitions "based on the degree of overlap between the respective
partitions, using a non-optimal greedy-type algorithm".  Matching lets the
same MPI rank own overlapping fine and coarse regions, so most inter-grid
transfer traffic stays local.  The paper notes this trades inter-level
transfer locality for intra-level balance — the right trade because the
implicit solver dominates per-level work.
"""

from __future__ import annotations

import numpy as np


def overlap_matrix(
    fine_part: np.ndarray,
    agglomerate_of: np.ndarray,
    coarse_part: np.ndarray,
    nparts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """``M[cp, fp]`` = fine weight in coarse partition ``cp`` overlapping
    fine partition ``fp``.

    ``agglomerate_of[v]`` maps a fine vertex to its coarse agglomerate.
    """
    fine_part = np.asarray(fine_part)
    coarse_of_fine = np.asarray(coarse_part)[np.asarray(agglomerate_of)]
    if weights is None:
        weights = np.ones(len(fine_part))
    m = np.zeros((nparts, nparts))
    np.add.at(m, (coarse_of_fine, fine_part), weights)
    return m


def greedy_match(overlap: np.ndarray) -> np.ndarray:
    """Greedy assignment: repeatedly bind the (coarse, fine) pair with the
    largest remaining overlap.

    Returns ``relabel`` with ``relabel[old_coarse_part] = fine_part`` —
    apply as ``new_coarse_part = relabel[coarse_part]``.  Non-optimal (it
    is not the Hungarian algorithm) but exactly the paper's approach.
    """
    overlap = np.asarray(overlap, dtype=np.float64)
    n = overlap.shape[0]
    if overlap.shape != (n, n):
        raise ValueError("overlap matrix must be square")
    relabel = np.full(n, -1, dtype=np.int64)
    taken_fine = np.zeros(n, dtype=bool)
    work = overlap.copy()
    for _ in range(n):
        cp, fp = np.unravel_index(np.argmax(work), work.shape)
        if work[cp, fp] < 0:
            break
        relabel[cp] = fp
        taken_fine[fp] = True
        work[cp, :] = -1.0
        work[:, fp] = -1.0
    # any unmatched coarse parts take the leftover fine labels
    leftovers = iter(np.flatnonzero(~taken_fine))
    for cp in range(n):
        if relabel[cp] == -1:
            relabel[cp] = next(leftovers)
    return relabel


def match_coarse_partition(
    fine_part: np.ndarray,
    agglomerate_of: np.ndarray,
    coarse_part: np.ndarray,
    nparts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Relabel ``coarse_part`` to maximize (greedily) overlap with
    ``fine_part``; returns the relabeled coarse partition."""
    m = overlap_matrix(fine_part, agglomerate_of, coarse_part, nparts, weights)
    relabel = greedy_match(m)
    return relabel[np.asarray(coarse_part)]


def overlap_fraction(
    fine_part: np.ndarray,
    agglomerate_of: np.ndarray,
    coarse_part: np.ndarray,
) -> float:
    """Fraction of fine vertices whose coarse agglomerate lives on the
    same rank — the locality the matching buys."""
    fine_part = np.asarray(fine_part)
    coarse_of_fine = np.asarray(coarse_part)[np.asarray(agglomerate_of)]
    return float(np.mean(fine_part == coarse_of_fine))
