"""Graph and space-filling-curve partitioning (the paper's METIS role).

``metis`` is a from-scratch multilevel k-way partitioner; ``graph``
provides CSR graphs and the implicit-line contraction of figure 6(b);
``sfcpart`` is Cart3D's SFC segment partitioner with cut-cell weighting;
``matching`` is the greedy coarse/fine partition matcher; ``quality``
quantifies cut, balance and surface-to-volume.

Solver code does not use this package directly: the distributed-solve
stack in :mod:`repro.runtime` wraps it behind the ``Partitioner``
protocol (lint rule R008 enforces this statically).
"""

from .graph import Graph, contract_lines, project_partition
from .matching import (
    greedy_match,
    match_coarse_partition,
    overlap_fraction,
    overlap_matrix,
)
from .metis import partition_graph
from .quality import (
    boundary_counts,
    edge_cut,
    halo_surface_law,
    ideal_cubic_surface_to_volume,
    imbalance,
    neighbor_counts,
    part_weights,
    surface_to_volume,
)
from .sfcpart import CUT_CELL_WEIGHT, cell_weights, partition_bounds, sfc_partition

__all__ = [
    "Graph",
    "contract_lines",
    "project_partition",
    "partition_graph",
    "sfc_partition",
    "cell_weights",
    "partition_bounds",
    "CUT_CELL_WEIGHT",
    "greedy_match",
    "match_coarse_partition",
    "overlap_matrix",
    "overlap_fraction",
    "edge_cut",
    "imbalance",
    "part_weights",
    "boundary_counts",
    "neighbor_counts",
    "surface_to_volume",
    "ideal_cubic_surface_to_volume",
    "halo_surface_law",
]
