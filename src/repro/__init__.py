"""repro — reproduction of *High Resolution Aerospace Applications using the
NASA Columbia Supercomputer* (Mavriplis, Aftosmis & Berger, SC 2005).

The package contains:

``repro.machine``
    An explicit model of the Columbia supercluster — SGI Altix 3700/3700BX2
    nodes, Itanium2 CPUs with a cache-residency compute-rate model, and the
    NUMAlink4 / InfiniBand / 10GigE interconnect fabrics including the
    InfiniBand MPI-connection limit (paper eq. 1).

``repro.comm``
    *SimMPI*, an in-process message-passing runtime.  It executes real
    domain-decomposed SPMD solver code (one Python thread per rank) while
    charging a virtual-time ledger using the machine model, and implements
    the paper's hybrid MPI/OpenMP communication strategies.

``repro.mesh``
    Unstructured hybrid meshes with boundary-layer stretching (NSU3D side)
    and adaptively refined cut-cell Cartesian meshes ordered by
    space-filling curves (Cart3D side).

``repro.partition``
    A from-scratch multilevel graph partitioner (the paper uses METIS), the
    implicit-line contraction pre-pass, the space-filling-curve segment
    partitioner, and the greedy coarse/fine partition matcher.

``repro.solvers``
    ``nsu3d``: a finite-volume compressible RANS solver with a one-equation
    turbulence model, point- and line-implicit smoothing and agglomeration
    multigrid.  ``cart3d``: a cell-centered finite-volume Euler solver with
    multigrid-accelerated Runge-Kutta smoothing on Cartesian meshes.

``repro.perf``
    The performance model that replays the paper's scalability experiments
    (figures 14-22) at the paper's scale (72M-point and 25M-cell meshes,
    up to 2016 CPUs) on the simulated machine.

``repro.database``
    Cart3D-style automated parameter-study machinery: configuration-space x
    wind-space job hierarchies, node packing, and the aero-performance
    database with virtual re-runs.

``repro.core``
    The variable-fidelity analysis workflow tying the two solvers together,
    and the registry mapping every paper figure to the code that
    regenerates it.

``repro.errors``
    The rooted error taxonomy: every deliberate failure raised by the
    package is a ``ReproError`` (each class also inherits the builtin it
    replaced, so historical ``except`` clauses keep working).

``repro.api``
    The curated facade: every public entry point re-exported from one
    module, plus the ``make_cart3d_solver``/``make_nsu3d_solver``
    factories all database-side solver construction goes through.
    Start there: ``from repro.api import FillRuntime, wing_body``.
"""

import importlib

__version__ = "1.0.0"

__all__ = [
    "api",
    "errors",
    "machine",
    "comm",
    "mesh",
    "partition",
    "solvers",
    "perf",
    "database",
    "core",
    "util",
]


def __getattr__(name: str):
    # Lazy submodule access: `import repro; repro.api.wing_body()` works
    # without eagerly importing every subsystem at package import time.
    if name in __all__:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
